//! Seed skyline groups and their decisive subspaces — steps 1–4 of the
//! Stellar pipeline (Figure 7): enumerate maximal c-groups of the seeds
//! (Figure 6), then determine each group's decisive subspaces from the
//! dominance matrix alone (Theorem 3 + Corollary 1). A c-group whose clause
//! set contains an empty clause is dominated-or-tied somewhere in every
//! candidate subspace and is dropped — it is not a skyline group.

use crate::cgroups::{maximal_cgroups, maximal_cgroups_par, MaxCGroup};
use crate::matrices::SeedView;
use crate::transversal::ClauseSet;
use skycube_parallel::{par_map_indexed, Parallelism};
use skycube_types::DimMask;

/// A seed skyline group: members are indexes into the seed array, `subspace`
/// is the maximal subspace `B`, `decisive` the minimal decisive subspaces
/// (non-empty, an antichain, each ⊆ `B`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SeedGroup {
    /// Seed indexes, ascending.
    pub members: Vec<usize>,
    /// Maximal subspace `B`.
    pub subspace: DimMask,
    /// Decisive subspaces, sorted.
    pub decisive: Vec<DimMask>,
}

/// Compute all seed skyline groups of the view.
pub fn seed_skyline_groups(view: &SeedView<'_>) -> Vec<SeedGroup> {
    let cgroups = maximal_cgroups(view);
    let mut out = Vec::with_capacity(cgroups.len());
    let mut member_flags = vec![false; view.len()];
    // Groups arrive grouped by their anchor (smallest member), whose
    // dominance row drives the clause generation; cache it across groups.
    let mut dom_row: Vec<DimMask> = Vec::new();
    let mut cached_rep = usize::MAX;
    for cg in cgroups {
        let rep = cg.members[0];
        if rep != cached_rep {
            view.dom_row(rep, &mut dom_row);
            cached_rep = rep;
        }
        if let Some(decisive) = decisive_subspaces(&cg, &dom_row, &mut member_flags) {
            out.push(SeedGroup {
                members: cg.members,
                subspace: cg.subspace,
                decisive,
            });
        }
    }
    out
}

/// Parallel [`seed_skyline_groups`]: the c-groups are enumerated in
/// parallel ([`maximal_cgroups_par`]), then partitioned into runs sharing
/// an anchor (the enumeration emits them grouped by smallest member) and
/// each run's clause generation fans out across threads with its own
/// dominance-row cache. Per-run outputs are concatenated in anchor order,
/// so the result is the identical `Vec` as the sequential pipeline. With
/// one thread this *is* the sequential pipeline.
pub fn seed_skyline_groups_par(view: &SeedView<'_>, par: Parallelism) -> Vec<SeedGroup> {
    if par.is_sequential() {
        return seed_skyline_groups(view);
    }
    let cgroups = maximal_cgroups_par(view, par);
    // Run boundaries: maximal runs of equal anchor (= members[0]).
    let mut runs: Vec<std::ops::Range<usize>> = Vec::new();
    let mut start = 0;
    for i in 1..=cgroups.len() {
        if i == cgroups.len() || cgroups[i].members[0] != cgroups[start].members[0] {
            runs.push(start..i);
            start = i;
        }
    }
    par_map_indexed(par, runs.len(), |r| {
        let run = &cgroups[runs[r].clone()];
        let mut out = Vec::with_capacity(run.len());
        let mut member_flags = vec![false; view.len()];
        let mut dom_row: Vec<DimMask> = Vec::new();
        view.dom_row(run[0].members[0], &mut dom_row);
        for cg in run {
            if let Some(decisive) = decisive_subspaces(cg, &dom_row, &mut member_flags) {
                out.push(SeedGroup {
                    members: cg.members.clone(),
                    subspace: cg.subspace,
                    decisive,
                });
            }
        }
        out
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Corollary 1 for one maximal c-group: one clause `B ∩ dom(rep, w)` per
/// outside seed `w`; `None` when some clause is empty (Theorem 3: the group
/// is dominated or non-exclusive everywhere and is not a skyline group).
fn decisive_subspaces(
    cg: &MaxCGroup,
    dom_row: &[DimMask],
    member_flags: &mut [bool],
) -> Option<Vec<DimMask>> {
    for &m in &cg.members {
        member_flags[m] = true;
    }
    let mut clauses = ClauseSet::new();
    let mut ok = true;
    for (w, &dom) in dom_row.iter().enumerate() {
        if member_flags[w] {
            continue;
        }
        if !clauses.add(dom & cg.subspace) {
            ok = false;
            break;
        }
    }
    for &m in &cg.members {
        member_flags[m] = false;
    }
    if !ok {
        return None;
    }
    let ts = clauses.minimal_transversals();
    debug_assert!(!ts.is_empty());
    // With no outside seeds at all (a lone seed), the empty transversal
    // means "any single dimension qualifies": the minimal decisive
    // subspaces are the single dimensions of B. The paper defines decisive
    // subspaces as non-empty, and indeed a sole object is the skyline of
    // every subspace.
    if ts.len() == 1 && ts[0].is_empty() {
        return Some(cg.subspace.iter().map(DimMask::single).collect());
    }
    Some(ts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycube_types::{running_example, Dataset};

    fn mask(s: &str) -> DimMask {
        DimMask::parse(s).unwrap()
    }

    fn find<'a>(groups: &'a [SeedGroup], members: &[usize]) -> &'a SeedGroup {
        groups
            .iter()
            .find(|g| g.members == members)
            .unwrap_or_else(|| panic!("group {members:?} missing from {groups:?}"))
    }

    /// The seed lattice of Figure 3(a), keyed by seed indexes 0=P2, 1=P4,
    /// 2=P5.
    #[test]
    fn figure_3a_seed_lattice() {
        let ds = running_example();
        let view = SeedView::new(&ds, vec![1, 3, 4]);
        let groups = seed_skyline_groups(&view);
        assert_eq!(groups.len(), 6);

        // (P2, (2,6,8,3), AC, CD)
        let p2 = find(&groups, &[0]);
        assert_eq!(p2.subspace, mask("ABCD"));
        assert_eq!(p2.decisive, vec![mask("AC"), mask("CD")]);

        // (P4, (6,4,8,5), BC)
        let p4 = find(&groups, &[1]);
        assert_eq!(p4.decisive, vec![mask("BC")]);

        // (P5, (2,4,9,3), AB, BD)
        let p5 = find(&groups, &[2]);
        assert_eq!(p5.decisive, vec![mask("AB"), mask("BD")]);

        // (P2P4, (*,*,8,*), C)
        let p2p4 = find(&groups, &[0, 1]);
        assert_eq!(p2p4.subspace, mask("C"));
        assert_eq!(p2p4.decisive, vec![mask("C")]);

        // (P2P5, (2,*,*,3), A, D)
        let p2p5 = find(&groups, &[0, 2]);
        assert_eq!(p2p5.subspace, mask("AD"));
        assert_eq!(p2p5.decisive, vec![mask("A"), mask("D")]);

        // (P4P5, (*,4,*,*), B)
        let p4p5 = find(&groups, &[1, 2]);
        assert_eq!(p4p5.subspace, mask("B"));
        assert_eq!(p4p5.decisive, vec![mask("B")]);
    }

    #[test]
    fn parallel_seed_groups_are_vec_identical() {
        let ds = running_example();
        let view = SeedView::new(&ds, vec![1, 3, 4]);
        let seq = seed_skyline_groups(&view);
        for threads in [1, 2, 4] {
            assert_eq!(
                seed_skyline_groups_par(&view, Parallelism::new(threads)),
                seq,
                "threads {threads}"
            );
        }
    }

    #[test]
    fn dominated_pair_group_is_dropped() {
        // Seeds u=(0,5,1), v=(5,0,1), w=(1,1,0): the pair group {u,v} shares
        // C with value 1, but w's C value 0 dominates it in C — clause
        // C ∩ dom(u,w) = C ∩ ∅ … w has smaller C, so dom(u,w) over C is
        // empty → the c-group (uv, C) must be dropped.
        let ds = Dataset::from_rows(3, vec![vec![0, 5, 1], vec![5, 0, 1], vec![1, 1, 0]]).unwrap();
        let view = SeedView::new(&ds, vec![0, 1, 2]);
        let groups = seed_skyline_groups(&view);
        assert!(groups.iter().all(|g| g.members != vec![0, 1]));
        // The three singletons survive.
        assert_eq!(groups.len(), 3);
    }

    #[test]
    fn lone_seed_has_single_dimension_decisives() {
        let ds = Dataset::from_rows(3, vec![vec![1, 2, 3], vec![2, 3, 4]]).unwrap();
        // Only object 0 is in the skyline.
        let view = SeedView::new(&ds, vec![0]);
        let groups = seed_skyline_groups(&view);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].subspace, mask("ABC"));
        assert_eq!(groups[0].decisive, vec![mask("A"), mask("B"), mask("C")]);
    }

    #[test]
    fn decisives_are_minimal_and_within_subspace() {
        let ds = running_example();
        let view = SeedView::new(&ds, vec![1, 3, 4]);
        for g in seed_skyline_groups(&view) {
            for (i, &c) in g.decisive.iter().enumerate() {
                assert!(!c.is_empty());
                assert!(c.is_subset_of(g.subspace));
                for (j, &c2) in g.decisive.iter().enumerate() {
                    if i != j {
                        assert!(!c.is_subset_of(c2), "antichain violated in {g:?}");
                    }
                }
            }
        }
    }
}
