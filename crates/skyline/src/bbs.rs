//! BBS — branch-and-bound skyline over an R-tree (Papadias, Tao, Fu, Seeger
//! — SIGMOD'03, the paper's reference [7]): the optimal progressive skyline
//! algorithm.
//!
//! Entries (nodes or points) are expanded in ascending *mindist* order (sum
//! of the lower corner over the query subspace). Because any dominator of a
//! point has a strictly smaller subspace sum, every point popped
//! undominated is final — the algorithm is progressive, and it visits only
//! nodes whose MBR is not dominated by an already-found skyline point.
//! Ties (equal projections) never dominate each other, so value-sharing
//! skyline objects are all emitted, matching the semantics the skyline-group
//! model requires.

use crate::rtree::{Node, RTree};
use skycube_types::{Dataset, DimMask, ObjId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One heap entry: a node or a concrete point, keyed by mindist. The Ord
/// impl only exists to satisfy `BinaryHeap`; the unique tiebreak counter in
/// the heap tuple means it is never actually consulted.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
enum Entry {
    Node(usize),
    Point(ObjId),
}

/// Compute the skyline of `space` by branch-and-bound over `tree`.
/// Returns ids ascending.
///
/// # Panics
/// Panics if `space` is empty.
pub fn skyline_bbs_indexed(tree: &RTree<'_>, space: DimMask) -> Vec<ObjId> {
    assert!(
        !space.is_empty(),
        "skyline of the empty subspace is undefined"
    );
    let ds = tree.dataset();
    let mut heap: BinaryHeap<(Reverse<i128>, usize, Entry)> = BinaryHeap::new();
    // The usize component makes orderings total without comparing `Entry`.
    let mut tiebreak = 0usize;
    let push = |heap: &mut BinaryHeap<_>, key: i128, e: Entry, tb: &mut usize| {
        heap.push((Reverse(key), *tb, e));
        *tb += 1;
    };

    if let Some(root) = tree.root() {
        let key = tree.nodes()[root].mbr().mindist(space);
        push(&mut heap, key, Entry::Node(root), &mut tiebreak);
    }

    let mut skyline: Vec<ObjId> = Vec::new();
    while let Some((_, _, entry)) = heap.pop() {
        match entry {
            Entry::Node(idx) => {
                let node = &tree.nodes()[idx];
                if mbr_dominated(ds, &skyline, node, space) {
                    continue;
                }
                match node {
                    Node::Leaf { entries, .. } => {
                        for &o in entries {
                            let key = ds.sum_over(o, space);
                            push(&mut heap, key, Entry::Point(o), &mut tiebreak);
                        }
                    }
                    Node::Inner { children, .. } => {
                        for &c in children {
                            let key = tree.nodes()[c].mbr().mindist(space);
                            push(&mut heap, key, Entry::Node(c), &mut tiebreak);
                        }
                    }
                }
            }
            Entry::Point(o) => {
                if !skyline.iter().any(|&s| ds.dominates(s, o, space)) {
                    skyline.push(o);
                }
            }
        }
    }
    skyline.sort_unstable();
    skyline
}

/// Whether some skyline point dominates the node's lower corner in `space`
/// (then every point inside is dominated too — strictness carries over
/// because the witness dimension only gets worse inside the box).
fn mbr_dominated(ds: &Dataset, skyline: &[ObjId], node: &Node, space: DimMask) -> bool {
    let corner = &node.mbr().min;
    skyline.iter().any(|&s| {
        let row = ds.row(s);
        let mut strict = false;
        for d in space.iter() {
            if row[d] > corner[d] {
                return false;
            }
            if row[d] < corner[d] {
                strict = true;
            }
        }
        strict
    })
}

/// Convenience: build the tree and run BBS (the [`crate::Algorithm::Bbs`]
/// entry point; amortize the build with [`RTree::build`] +
/// [`skyline_bbs_indexed`] when querying many subspaces).
pub fn skyline_bbs(ds: &Dataset, space: DimMask) -> Vec<ObjId> {
    let tree = RTree::build(ds);
    skyline_bbs_indexed(&tree, space)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::skyline_naive;
    use skycube_types::{running_example, Dataset};

    #[test]
    fn matches_oracle_on_running_example_all_subspaces() {
        let ds = running_example();
        let tree = RTree::build(&ds);
        for space in ds.full_space().subsets() {
            assert_eq!(
                skyline_bbs_indexed(&tree, space),
                skyline_naive(&ds, space),
                "subspace {space}"
            );
        }
    }

    #[test]
    fn matches_oracle_on_random_multi_level_trees() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(79);
        for trial in 0..10 {
            let dims = rng.gen_range(2..=4);
            let n = rng.gen_range(200..=1200);
            let rows: Vec<Vec<i64>> = (0..n)
                .map(|_| (0..dims).map(|_| rng.gen_range(0..40)).collect())
                .collect();
            let ds = Dataset::from_rows(dims, rows).unwrap();
            let tree = RTree::build(&ds);
            tree.validate().unwrap();
            for space in ds.full_space().subsets() {
                assert_eq!(
                    skyline_bbs_indexed(&tree, space),
                    skyline_naive(&ds, space),
                    "trial {trial} subspace {space}"
                );
            }
        }
    }

    #[test]
    fn one_tree_serves_many_subspaces() {
        let ds = Dataset::from_rows(
            3,
            (0..500u32)
                .map(|i| {
                    vec![
                        (i % 17) as i64,
                        ((i * 7) % 23) as i64,
                        ((i * 13) % 11) as i64,
                    ]
                })
                .collect(),
        )
        .unwrap();
        let tree = RTree::build(&ds);
        for space in ds.full_space().subsets() {
            assert_eq!(skyline_bbs_indexed(&tree, space), skyline_naive(&ds, space));
        }
    }

    #[test]
    fn ties_are_all_emitted() {
        let mut rows = vec![vec![0i64, 0]; 5];
        rows.push(vec![1, 1]);
        let ds = Dataset::from_rows(2, rows).unwrap();
        assert_eq!(skyline_bbs(&ds, ds.full_space()), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::from_rows(2, vec![]).unwrap();
        assert!(skyline_bbs(&ds, ds.full_space()).is_empty());
    }
}
