//! Partitioned parallel skyline.
//!
//! The classic partitioning scheme from the D&C family (Börzsönyi et al.)
//! and the parallel-skyline literature: split the rows into `k`
//! contiguous chunks, compute a local skyline per chunk with SFS, then
//! merge pairs of local skylines by cross-filtering until one remains.
//! Chunk boundaries and the merge tree depend only on `(n, threads)`,
//! and the final result is sorted ascending — so for a fixed input the
//! output is the skyline *set* in canonical order, identical to every
//! sequential algorithm in this crate regardless of scheduling.

use crate::dnc::merge_with;
use crate::sfs::{filter_presorted_with, skyline_sfs_kernel, SortKey};
use skycube_parallel::{chunk_ranges, par_map_indexed, par_map_slice, Parallelism};
use skycube_types::{Dataset, DimMask, DominanceKernel, ObjId};

/// Compute the skyline of `space` by partitioned parallel SFS.
///
/// With `par.threads() == 1` (or an input too small to split) this is a
/// plain sequential SFS pass. Otherwise rows are split into one chunk
/// per thread, local skylines are computed concurrently, and local
/// results are cross-filter merged pairwise (also concurrently) into the
/// global skyline. Output is ascending ids — identical to
/// [`crate::skyline`] on the same input.
///
/// # Panics
/// Panics if `space` is empty.
pub fn skyline_parallel(ds: &Dataset, space: DimMask, par: Parallelism) -> Vec<ObjId> {
    skyline_parallel_with(ds, space, par, DominanceKernel::default())
}

/// [`skyline_parallel`] with an explicit dominance kernel.
///
/// Chunk boundaries are contiguous id ranges, so under the columnar kernel
/// each worker's presort-and-filter pass and each cross-filter merge sweep
/// contiguous per-dimension columns — the chunking hands every worker its
/// own cache-local slice of the column layout.
///
/// # Panics
/// Panics if `space` is empty.
pub fn skyline_parallel_with(
    ds: &Dataset,
    space: DimMask,
    par: Parallelism,
    kernel: DominanceKernel,
) -> Vec<ObjId> {
    assert!(
        !space.is_empty(),
        "skyline of the empty subspace is undefined"
    );
    let n = ds.len();
    let chunks = chunk_ranges(n, par.threads());
    if chunks.len() <= 1 {
        return skyline_sfs_kernel(ds, space, SortKey::Sum, kernel);
    }

    // Local skylines per contiguous id chunk, in parallel. Each chunk
    // runs the same presort-then-filter pipeline SFS uses globally.
    let mut locals: Vec<Vec<ObjId>> = par_map_slice(par, &chunks, |range| {
        let mut order: Vec<ObjId> = (range.start as ObjId..range.end as ObjId).collect();
        let sums: Vec<i128> = order.iter().map(|&o| ds.sum_over(o, space)).collect();
        order.sort_unstable_by_key(|&o| sums[(o as usize) - range.start]);
        filter_presorted_with(ds, space, &order, kernel)
    });

    // Pairwise parallel merge: level by level, adjacent survivors are
    // cross-filtered. The tree shape depends only on the chunk count, so
    // the surviving set (a unique set, returned sorted) is deterministic.
    while locals.len() > 1 {
        let pairs = locals.len() / 2;
        let mut next: Vec<Vec<ObjId>> = par_map_indexed(par, pairs, |i| {
            merge_with(ds, space, &locals[2 * i], &locals[2 * i + 1], kernel)
        });
        if locals.len() % 2 == 1 {
            next.push(locals.pop().expect("odd tail present"));
        }
        locals = next;
    }

    let mut out = locals.pop().unwrap_or_default();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skyline;
    use skycube_types::running_example;

    #[test]
    fn matches_sequential_on_running_example() {
        let ds = running_example();
        for space in ds.full_space().subsets() {
            for threads in [1, 2, 4] {
                assert_eq!(
                    skyline_parallel(&ds, space, Parallelism::new(threads)),
                    skyline(&ds, space),
                    "threads={threads} space={space}"
                );
            }
        }
    }

    #[test]
    fn matches_sequential_on_staircase_and_dominated_mix() {
        // 500 rows: a staircase (all skyline) plus clones shifted up (none).
        let n: i64 = 250;
        let mut rows: Vec<Vec<i64>> = (0..n).map(|i| vec![i, n - 1 - i, i % 7]).collect();
        rows.extend((0..n).map(|i| vec![i + 1, n - i, i % 7 + 1]));
        let ds = Dataset::from_rows(3, rows).unwrap();
        let space = ds.full_space();
        let expect = skyline(&ds, space);
        for threads in [1, 2, 3, 4, 7] {
            assert_eq!(
                skyline_parallel(&ds, space, Parallelism::new(threads)),
                expect
            );
        }
    }

    #[test]
    fn tiny_inputs_fall_back_to_sequential() {
        let ds = Dataset::from_rows(2, vec![vec![1, 2]]).unwrap();
        let space = ds.full_space();
        assert_eq!(skyline_parallel(&ds, space, Parallelism::new(8)), vec![0]);
    }

    use skycube_types::Dataset;
}
