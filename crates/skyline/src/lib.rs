//! Single-space skyline algorithms — the substrate both Stellar (full-space
//! skyline / seed computation) and the Skyey baseline (per-subspace skylines)
//! are built on.
//!
//! Four interchangeable algorithms are provided, all returning the identical
//! set (ascending object ids): a naive O(n²) oracle, block nested loops
//! ([BNL][skyline_bnl]), sort-first skyline ([SFS][skyline_sfs]) with either
//! a sum or a lexicographic topological key, and divide & conquer
//! ([D&C][skyline_dnc]). They correspond to the paper's related work [1, 2]
//! and serve as the baselines of the skyline substrate.
//!
//! ```
//! use skycube_skyline::{skyline, Algorithm};
//! use skycube_types::{running_example, DimMask};
//!
//! let ds = running_example();
//! // Full-space skyline of the paper's running example: P2, P4, P5.
//! assert_eq!(skyline(&ds, ds.full_space()), vec![1, 3, 4]);
//! assert_eq!(Algorithm::Bnl.run(&ds, DimMask::parse("BD").unwrap()),
//!            Algorithm::Naive.run(&ds, DimMask::parse("BD").unwrap()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bbs;
mod bitmap;
mod bnl;
mod dnc;
mod kdominant;
mod less;
mod naive;
mod parallel;
mod rtree;
mod salsa;
mod sfs;
mod skyband;

pub use bbs::{skyline_bbs, skyline_bbs_indexed};
pub use bitmap::{skyline_bitmap, BitSet, BitmapIndex};
pub use bnl::{skyline_bnl, skyline_bnl_with};
pub use dnc::skyline_dnc;
pub use kdominant::{k_dominant_skyline, k_dominates};
pub use less::{skyline_less, skyline_less_with};
pub use naive::skyline_naive;
pub use parallel::{skyline_parallel, skyline_parallel_with};
pub use rtree::{Mbr, Node, RTree, NODE_CAPACITY};
pub use salsa::{skyline_salsa, skyline_salsa_counting};
pub use sfs::{
    filter_presorted, filter_presorted_with, skyline_sfs, skyline_sfs_kernel, skyline_sfs_with,
    SortKey,
};
pub use skyband::{constrained_skyline, k_skyband, Ranges};

pub use skycube_parallel::Parallelism;
pub use skycube_types::DominanceKernel;
use skycube_types::{Dataset, DimMask, ObjId};

/// Algorithm selector for dynamic choice (benchmarks, builder configs).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Algorithm {
    /// O(n²) pairwise oracle.
    Naive,
    /// Block nested loops.
    Bnl,
    /// Sort-first skyline with sum key (the default — robust all-rounder).
    #[default]
    Sfs,
    /// Sort-first skyline with lexicographic key.
    SfsLex,
    /// Divide and conquer.
    Dnc,
    /// Linear elimination sort for skyline (Godfrey et al., VLDB'05).
    Less,
    /// Branch-and-bound skyline over a bulk-loaded R-tree (Papadias et al.,
    /// SIGMOD'03). Builds the index per call; see [`skyline_bbs_indexed`]
    /// to amortize the build over many subspace queries.
    Bbs,
    /// Sort-and-limit skyline (SaLSa) with an early stop condition.
    Salsa,
    /// Bitmap skyline via rank bitslices (Tan et al., VLDB'01). Builds the
    /// bitmap per call; see [`BitmapIndex`] to amortize. Memory-hungry on
    /// high-cardinality domains.
    Bitmap,
    /// Partitioned parallel SFS over [`Parallelism::available`] threads
    /// (chunked local skylines, pairwise cross-filter merge). Same output
    /// as every other variant; see [`skyline_parallel`] to pick the
    /// thread count explicitly.
    Parallel,
}

impl Algorithm {
    /// Run this algorithm on `ds` restricted to `space` with the default
    /// dominance kernel.
    pub fn run(self, ds: &Dataset, space: DimMask) -> Vec<ObjId> {
        self.run_with(ds, space, DominanceKernel::default())
    }

    /// Run this algorithm with an explicit dominance kernel.
    ///
    /// BNL, SFS (both keys), LESS, and the partitioned parallel variant
    /// route their inner elimination loops through the selected kernel;
    /// the index-/partition-based algorithms (naive, D&C, BBS, SaLSa,
    /// bitmap) have no batched inner loop and ignore the knob.
    pub fn run_with(self, ds: &Dataset, space: DimMask, kernel: DominanceKernel) -> Vec<ObjId> {
        match self {
            Algorithm::Naive => skyline_naive(ds, space),
            Algorithm::Bnl => skyline_bnl_with(ds, space, kernel),
            Algorithm::Sfs => skyline_sfs_kernel(ds, space, SortKey::Sum, kernel),
            Algorithm::SfsLex => skyline_sfs_kernel(ds, space, SortKey::Lex, kernel),
            Algorithm::Dnc => skyline_dnc(ds, space),
            Algorithm::Less => skyline_less_with(ds, space, kernel),
            Algorithm::Bbs => skyline_bbs(ds, space),
            Algorithm::Salsa => skyline_salsa(ds, space),
            Algorithm::Bitmap => skyline_bitmap(ds, space),
            Algorithm::Parallel => {
                skyline_parallel_with(ds, space, Parallelism::available(), kernel)
            }
        }
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Naive => "naive",
            Algorithm::Bnl => "bnl",
            Algorithm::Sfs => "sfs-sum",
            Algorithm::SfsLex => "sfs-lex",
            Algorithm::Dnc => "dnc",
            Algorithm::Less => "less",
            Algorithm::Bbs => "bbs",
            Algorithm::Salsa => "salsa",
            Algorithm::Bitmap => "bitmap",
            Algorithm::Parallel => "parallel",
        }
    }

    /// All selectable algorithms (for exhaustive tests/benches).
    pub const ALL: [Algorithm; 10] = [
        Algorithm::Naive,
        Algorithm::Bnl,
        Algorithm::Sfs,
        Algorithm::SfsLex,
        Algorithm::Dnc,
        Algorithm::Less,
        Algorithm::Bbs,
        Algorithm::Salsa,
        Algorithm::Bitmap,
        Algorithm::Parallel,
    ];
}

/// Compute the skyline of `space` with the default algorithm (SFS).
pub fn skyline(ds: &Dataset, space: DimMask) -> Vec<ObjId> {
    Algorithm::default().run(ds, space)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycube_types::running_example;

    #[test]
    fn all_algorithms_agree_on_running_example() {
        let ds = running_example();
        for space in ds.full_space().subsets() {
            let expect = skyline_naive(&ds, space);
            for alg in Algorithm::ALL {
                assert_eq!(alg.run(&ds, space), expect, "{} on {space}", alg.name());
            }
        }
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<&str> = Algorithm::ALL.iter().map(|a| a.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), Algorithm::ALL.len());
    }
}
