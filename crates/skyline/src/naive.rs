//! Naive O(n²·|B|) skyline — the correctness oracle for every other
//! algorithm in this crate.

use skycube_types::{Dataset, DimMask, ObjId};

/// Compute the skyline of `space` by comparing every pair of objects.
///
/// An object is in the skyline iff no *other* object strictly dominates it in
/// `space` (objects with identical projections never dominate each other, so
/// value-sharing objects enter the skyline together, as in Definition 1).
///
/// # Panics
/// Panics if `space` is empty.
pub fn skyline_naive(ds: &Dataset, space: DimMask) -> Vec<ObjId> {
    assert!(
        !space.is_empty(),
        "skyline of the empty subspace is undefined"
    );
    let n = ds.len() as ObjId;
    let mut out = Vec::new();
    'outer: for u in 0..n {
        for v in 0..n {
            if v != u && ds.dominates(v, u, space) {
                continue 'outer;
            }
        }
        out.push(u);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycube_types::running_example;

    #[test]
    fn full_space_skyline_of_running_example() {
        // Example 2: P2, P4, P5 are the seeds.
        let ds = running_example();
        assert_eq!(skyline_naive(&ds, ds.full_space()), vec![1, 3, 4]);
    }

    #[test]
    fn subspace_skylines_of_example1_figure() {
        // Figure 1: objects a..e = (2,6),(2,5),(4,4),(6,3),(7,1) with
        // skylines XY={b,d,e}? — that example uses different data; here we
        // check the running example instead: skyline of B = {P3,P4,P5} (all
        // share the minimum value 4), skyline of D = {P2,P3,P5}.
        let ds = running_example();
        assert_eq!(
            skyline_naive(&ds, DimMask::parse("B").unwrap()),
            vec![2, 3, 4]
        );
        assert_eq!(
            skyline_naive(&ds, DimMask::parse("D").unwrap()),
            vec![1, 2, 4]
        );
    }

    #[test]
    fn duplicates_in_subspace_enter_together() {
        let ds = Dataset::from_rows(1, vec![vec![3], vec![1], vec![1]]).unwrap();
        assert_eq!(skyline_naive(&ds, DimMask::single(0)), vec![1, 2]);
    }

    #[test]
    fn empty_dataset_empty_skyline() {
        let ds = Dataset::from_rows(2, vec![]).unwrap();
        assert!(skyline_naive(&ds, DimMask::full(2)).is_empty());
    }

    #[test]
    #[should_panic]
    fn empty_space_panics() {
        let ds = running_example();
        skyline_naive(&ds, DimMask::EMPTY);
    }

    use skycube_types::Dataset;
}
