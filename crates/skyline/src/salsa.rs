//! SaLSa — *sort and limit skyline algorithm* (Bartolini, Ciaccia, Patella):
//! a sort-based skyline that can stop before scanning all of the input.
//!
//! Objects are scanned in ascending `(min-coordinate, sum)` order — a
//! topological order for dominance — while tracking the *stop point*: the
//! skyline member with the smallest maximum coordinate over the query
//! subspace. As soon as the next object's minimum coordinate exceeds that
//! value, the stop point dominates everything still unscanned and the scan
//! terminates. On data whose skyline concentrates near the origin this
//! skips most of the input.

use skycube_types::{Dataset, DimMask, DomRelation, ObjId, Value};

/// Compute the skyline of `space` with SaLSa. Returns ids ascending, plus
/// nothing else — see [`skyline_salsa_counting`] for the scan statistics.
///
/// # Panics
/// Panics if `space` is empty.
pub fn skyline_salsa(ds: &Dataset, space: DimMask) -> Vec<ObjId> {
    skyline_salsa_counting(ds, space).0
}

/// Like [`skyline_salsa`], also returning how many objects were scanned
/// before the stop condition fired (= `ds.len()` when it never fired).
pub fn skyline_salsa_counting(ds: &Dataset, space: DimMask) -> (Vec<ObjId>, usize) {
    assert!(
        !space.is_empty(),
        "skyline of the empty subspace is undefined"
    );
    let mut order: Vec<ObjId> = ds.ids().collect();
    let key = |o: ObjId| -> (Value, i128) {
        let row = ds.row(o);
        let min = space.iter().map(|d| row[d]).min().expect("non-empty space");
        (min, ds.sum_over(o, space))
    };
    order.sort_unstable_by_key(|&o| key(o));

    let mut window: Vec<ObjId> = Vec::new();
    // Smallest maximum coordinate among skyline members found so far.
    let mut stop_bound: Option<Value> = None;
    let mut scanned = 0usize;
    'scan: for &u in &order {
        let row = ds.row(u);
        let min_c = space.iter().map(|d| row[d]).min().expect("non-empty space");
        if let Some(bound) = stop_bound {
            if min_c > bound {
                break; // the stop point dominates every remaining object
            }
        }
        scanned += 1;
        for &w in &window {
            match ds.compare(w, u, space) {
                DomRelation::Dominates => continue 'scan,
                DomRelation::DominatedBy => {
                    debug_assert!(false, "(minC, sum) order not topological");
                }
                _ => {}
            }
        }
        window.push(u);
        let max_c = space.iter().map(|d| row[d]).max().expect("non-empty space");
        stop_bound = Some(match stop_bound {
            None => max_c,
            Some(b) => b.min(max_c),
        });
    }
    window.sort_unstable();
    (window, scanned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::skyline_naive;
    use skycube_types::{running_example, Dataset};

    #[test]
    fn matches_oracle_on_running_example() {
        let ds = running_example();
        for space in ds.full_space().subsets() {
            assert_eq!(skyline_salsa(&ds, space), skyline_naive(&ds, space));
        }
    }

    #[test]
    fn matches_oracle_on_random_data() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(97);
        for trial in 0..30 {
            let dims = rng.gen_range(1..=5);
            let n = rng.gen_range(1..=200);
            let domain = [4i64, 50, 1000][trial % 3];
            let rows: Vec<Vec<i64>> = (0..n)
                .map(|_| (0..dims).map(|_| rng.gen_range(0..domain)).collect())
                .collect();
            let ds = Dataset::from_rows(dims, rows).unwrap();
            for space in ds.full_space().subsets() {
                assert_eq!(
                    skyline_salsa(&ds, space),
                    skyline_naive(&ds, space),
                    "trial {trial} subspace {space}"
                );
            }
        }
    }

    #[test]
    fn early_stop_fires_on_origin_dominator() {
        // One point at the origin dominates everything: after scanning it,
        // every later minC exceeds its maxC (0), so exactly 1 object is
        // scanned… plus any other object with minC ≤ 0.
        let mut rows: Vec<Vec<i64>> = (1..1000).map(|i| vec![i, i + 1]).collect();
        rows.push(vec![0, 0]);
        let ds = Dataset::from_rows(2, rows).unwrap();
        let (sky, scanned) = skyline_salsa_counting(&ds, ds.full_space());
        assert_eq!(sky, vec![999]);
        assert_eq!(scanned, 1, "stop condition must fire immediately");
    }

    #[test]
    fn no_early_stop_on_anti_correlated_staircase() {
        // Perfect staircase: everything is skyline; no stop possible.
        let n = 50i64;
        let rows: Vec<Vec<i64>> = (0..n).map(|i| vec![i, n - i]).collect();
        let ds = Dataset::from_rows(2, rows).unwrap();
        let (sky, scanned) = skyline_salsa_counting(&ds, ds.full_space());
        assert_eq!(sky.len(), n as usize);
        assert_eq!(scanned, n as usize);
    }

    #[test]
    fn stop_bound_is_not_overeager_with_ties() {
        // Points tied at the stop bound must still be scanned (strict >).
        let ds = Dataset::from_rows(2, vec![vec![0, 3], vec![3, 3], vec![3, 0]]).unwrap();
        let sky = skyline_salsa(&ds, ds.full_space());
        assert_eq!(sky, skyline_naive(&ds, ds.full_space()));
    }
}
