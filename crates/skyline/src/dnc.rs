//! Divide-and-conquer skyline (after Börzsönyi et al., ICDE 2001).
//!
//! This is the practical in-memory variant: split the input in halves,
//! compute each half's skyline recursively, then merge by cross-filtering —
//! a survivor of one half is kept only if no survivor of the other half
//! dominates it. The classic multidimensional median-split merge is only an
//! asymptotic improvement for tiny dimensionality; the cross-filter merge is
//! what performs best at the paper's scales and keeps the code auditable.

use skycube_types::{ColumnarWindow, Dataset, DimMask, DominanceKernel, ObjId};

/// Below this size the recursion bottoms out into a BNL pass.
const LEAF_SIZE: usize = 64;

/// Compute the skyline of `space` by divide and conquer.
///
/// # Panics
/// Panics if `space` is empty.
pub fn skyline_dnc(ds: &Dataset, space: DimMask) -> Vec<ObjId> {
    assert!(
        !space.is_empty(),
        "skyline of the empty subspace is undefined"
    );
    let ids: Vec<ObjId> = ds.ids().collect();
    let mut out = dnc(ds, space, &ids);
    out.sort_unstable();
    out
}

fn dnc(ds: &Dataset, space: DimMask, ids: &[ObjId]) -> Vec<ObjId> {
    if ids.len() <= LEAF_SIZE {
        return leaf_bnl(ds, space, ids);
    }
    let mid = ids.len() / 2;
    let left = dnc(ds, space, &ids[..mid]);
    let right = dnc(ds, space, &ids[mid..]);
    merge(ds, space, &left, &right)
}

/// BNL over an explicit id slice.
fn leaf_bnl(ds: &Dataset, space: DimMask, ids: &[ObjId]) -> Vec<ObjId> {
    use skycube_types::DomRelation;
    let mut window: Vec<ObjId> = Vec::new();
    'scan: for &u in ids {
        let mut i = 0;
        while i < window.len() {
            match ds.compare(window[i], u, space) {
                DomRelation::Dominates => continue 'scan,
                DomRelation::DominatedBy => {
                    window.swap_remove(i);
                }
                _ => i += 1,
            }
        }
        window.push(u);
    }
    window
}

/// Keep the members of each side not dominated by any member of the other.
/// Members of the same side are already mutually non-dominating.
///
/// Shared with the partitioned parallel skyline, whose per-chunk local
/// skylines satisfy the same precondition.
pub(crate) fn merge(ds: &Dataset, space: DimMask, left: &[ObjId], right: &[ObjId]) -> Vec<ObjId> {
    let mut out: Vec<ObjId> = Vec::with_capacity(left.len() + right.len());
    out.extend(
        left.iter()
            .copied()
            .filter(|&u| !right.iter().any(|&v| ds.dominates(v, u, space))),
    );
    out.extend(
        right
            .iter()
            .copied()
            .filter(|&u| !left.iter().any(|&v| ds.dominates(v, u, space))),
    );
    out
}

/// [`merge`] with an explicit dominance kernel. The columnar path loads each
/// side into a [`ColumnarWindow`] once and answers every "does the other
/// side dominate me?" probe with a blocked column sweep; survivors keep
/// their input order, exactly like the scalar merge.
pub(crate) fn merge_with(
    ds: &Dataset,
    space: DimMask,
    left: &[ObjId],
    right: &[ObjId],
    kernel: DominanceKernel,
) -> Vec<ObjId> {
    if !kernel.is_columnar() {
        return merge(ds, space, left, right);
    }
    let mut lw = ColumnarWindow::with_capacity(ds.dims(), left.len());
    for &v in left {
        lw.push(v, ds.row(v));
    }
    let mut rw = ColumnarWindow::with_capacity(ds.dims(), right.len());
    for &v in right {
        rw.push(v, ds.row(v));
    }
    let mut out: Vec<ObjId> = Vec::with_capacity(left.len() + right.len());
    out.extend(
        left.iter()
            .copied()
            .filter(|&u| !rw.any_dominates(ds.row(u), space)),
    );
    out.extend(
        right
            .iter()
            .copied()
            .filter(|&u| !lw.any_dominates(ds.row(u), space)),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::skyline_naive;
    use skycube_types::{running_example, Dataset};

    #[test]
    fn matches_oracle_on_running_example() {
        let ds = running_example();
        for space in ds.full_space().subsets() {
            assert_eq!(skyline_dnc(&ds, space), skyline_naive(&ds, space));
        }
    }

    #[test]
    fn recursion_exercised_beyond_leaf_size() {
        // A diagonal staircase: everyone is in the skyline.
        let n = 300;
        let rows: Vec<Vec<i64>> = (0..n).map(|i| vec![i, n - 1 - i]).collect();
        let ds = Dataset::from_rows(2, rows).unwrap();
        let sky = skyline_dnc(&ds, DimMask::full(2));
        assert_eq!(sky.len(), n as usize);
    }

    #[test]
    fn cross_half_domination_filtered() {
        // One global dominator placed at the end so it lives in the right half.
        let mut rows: Vec<Vec<i64>> = (1..200).map(|i| vec![i, i]).collect();
        rows.push(vec![0, 0]);
        let ds = Dataset::from_rows(2, rows).unwrap();
        assert_eq!(skyline_dnc(&ds, DimMask::full(2)), vec![199]);
    }

    use skycube_types::DimMask;
}
