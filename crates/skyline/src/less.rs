//! LESS — *linear elimination sort for skyline* (Godfrey, Shipley, Gryz,
//! VLDB'05), the integrated method cited by the paper as [5].
//!
//! LESS improves on SFS by dropping points *during* the sort:
//! an *elimination-filter* (EF) window of a few of the best points seen so
//! far is carried through the initial pass, discarding the bulk of dominated
//! points before they are ever sorted; the surviving points are then sorted
//! by a monotone key and finished with the usual skyline-filter pass.

use crate::sfs::{filter_presorted, filter_presorted_with};
use skycube_types::{ColumnarWindow, Dataset, DimMask, DomRelation, DominanceKernel, ObjId};

/// Capacity of the elimination-filter window. Godfrey et al. observe a small
/// window (about one memory page) captures nearly all of the benefit.
const EF_CAPACITY: usize = 16;

/// Compute the skyline of `space` with LESS.
///
/// Returns ids in ascending order.
///
/// # Panics
/// Panics if `space` is empty.
pub fn skyline_less(ds: &Dataset, space: DimMask) -> Vec<ObjId> {
    skyline_less_with(ds, space, DominanceKernel::default())
}

/// [`skyline_less`] with an explicit dominance kernel.
///
/// The columnar path stores the EF window column-wise (sweeping it per probe
/// instead of chasing rows) and runs the final filter pass through
/// [`filter_presorted_with`]. EF membership may differ from the scalar path
/// on sum ties, but the EF only ever discards dominated points and the final
/// pass removes every dominated survivor, so the output is identical.
///
/// # Panics
/// Panics if `space` is empty.
pub fn skyline_less_with(ds: &Dataset, space: DimMask, kernel: DominanceKernel) -> Vec<ObjId> {
    assert!(
        !space.is_empty(),
        "skyline of the empty subspace is undefined"
    );
    if kernel.is_columnar() {
        return less_columnar(ds, space);
    }

    // Pass 0: elimination-filter scan. The EF window keeps the points with
    // the smallest sums seen so far; anything dominated by a window point is
    // eliminated immediately.
    let mut ef: Vec<(i128, ObjId)> = Vec::with_capacity(EF_CAPACITY);
    let mut survivors: Vec<(i128, ObjId)> = Vec::with_capacity(ds.len());
    'scan: for u in ds.ids() {
        let key = ds.sum_over(u, space);
        for &(_, w) in &ef {
            if ds.compare(w, u, space) == DomRelation::Dominates {
                continue 'scan;
            }
        }
        survivors.push((key, u));
        // Maintain the window: insert if it beats the current worst.
        if ef.len() < EF_CAPACITY {
            ef.push((key, u));
            ef.sort_unstable_by_key(|&(k, _)| k);
        } else if key < ef.last().expect("window non-empty").0 {
            ef.pop();
            ef.push((key, u));
            ef.sort_unstable_by_key(|&(k, _)| k);
        }
    }

    // Pass 1: sort survivors by the monotone key (topological for
    // dominance) and run the skyline-filter pass.
    survivors.sort_unstable_by_key(|&(k, _)| k);
    let order: Vec<ObjId> = survivors.into_iter().map(|(_, o)| o).collect();
    let mut skyline = filter_presorted(ds, space, &order);
    skyline.sort_unstable();
    skyline
}

fn less_columnar(ds: &Dataset, space: DimMask) -> Vec<ObjId> {
    let mut ef = ColumnarWindow::with_capacity(ds.dims(), EF_CAPACITY);
    let mut ef_keys: Vec<i128> = Vec::with_capacity(EF_CAPACITY);
    let mut survivors: Vec<(i128, ObjId)> = Vec::with_capacity(ds.len());
    for u in ds.ids() {
        let key = ds.sum_over(u, space);
        let row = ds.row(u);
        if ef.any_dominates(row, space) {
            continue;
        }
        survivors.push((key, u));
        if ef_keys.len() < EF_CAPACITY {
            ef.push(u, row);
            ef_keys.push(key);
        } else {
            let (worst, &worst_key) = ef_keys
                .iter()
                .enumerate()
                .max_by_key(|&(_, &k)| k)
                .expect("window non-empty");
            if key < worst_key {
                ef.swap_remove(worst);
                ef_keys.swap_remove(worst);
                ef.push(u, row);
                ef_keys.push(key);
            }
        }
    }
    survivors.sort_unstable_by_key(|&(k, _)| k);
    let order: Vec<ObjId> = survivors.into_iter().map(|(_, o)| o).collect();
    let mut skyline = filter_presorted_with(ds, space, &order, DominanceKernel::Columnar);
    skyline.sort_unstable();
    skyline
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::skyline_naive;
    use skycube_types::{running_example, Dataset};

    #[test]
    fn matches_oracle_on_running_example() {
        let ds = running_example();
        for space in ds.full_space().subsets() {
            assert_eq!(skyline_less(&ds, space), skyline_naive(&ds, space));
        }
    }

    #[test]
    fn elimination_filter_never_drops_skyline_points() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(41);
        for trial in 0..25 {
            let dims = rng.gen_range(1..=5);
            let n = rng.gen_range(1..=200);
            let rows: Vec<Vec<i64>> = (0..n)
                .map(|_| (0..dims).map(|_| rng.gen_range(0..8)).collect())
                .collect();
            let ds = Dataset::from_rows(dims, rows).unwrap();
            let space = ds.full_space();
            assert_eq!(
                skyline_less(&ds, space),
                skyline_naive(&ds, space),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn window_overflow_path_exercised() {
        // More than EF_CAPACITY mutually incomparable points with distinct
        // sums force both insertion branches.
        let n = 64i64;
        let rows: Vec<Vec<i64>> = (0..n).map(|i| vec![i, 2 * (n - i)]).collect();
        let ds = Dataset::from_rows(2, rows).unwrap();
        let sky = skyline_less(&ds, ds.full_space());
        assert_eq!(sky.len(), n as usize);
    }

    #[test]
    fn equal_projections_survive_less() {
        let ds = Dataset::from_rows(2, vec![vec![1, 1]; 40]).unwrap();
        assert_eq!(
            skyline_less(&ds, ds.full_space()),
            (0..40u32).collect::<Vec<_>>()
        );
    }
}
