//! Block-nested-loops skyline (Börzsönyi et al., ICDE 2001).
//!
//! The in-memory variant: a growing *window* of mutually incomparable
//! objects. Each incoming object is compared against the window; it is
//! discarded if dominated, inserted otherwise, evicting any window members it
//! dominates. With the whole window in memory (the paper's datasets fit
//! easily) no temp-file passes are needed and the window at end-of-scan *is*
//! the skyline.

use skycube_types::{ColumnarWindow, Dataset, DimMask, DomRelation, DominanceKernel, ObjId};

/// Compute the skyline of `space` with block nested loops.
///
/// Returns ids in ascending order.
///
/// # Panics
/// Panics if `space` is empty.
pub fn skyline_bnl(ds: &Dataset, space: DimMask) -> Vec<ObjId> {
    skyline_bnl_with(ds, space, DominanceKernel::default())
}

/// [`skyline_bnl`] with an explicit dominance kernel.
///
/// The columnar path keeps the BNL window column-wise: each incoming object
/// is classified against every member with one flags sweep, then admitted or
/// discarded ([`ColumnarWindow::admit`]). Because window members are
/// mutually non-dominating, "some member dominates u" and "u evicts some
/// member" are mutually exclusive, so check-then-evict produces exactly the
/// scalar window set.
///
/// # Panics
/// Panics if `space` is empty.
pub fn skyline_bnl_with(ds: &Dataset, space: DimMask, kernel: DominanceKernel) -> Vec<ObjId> {
    assert!(
        !space.is_empty(),
        "skyline of the empty subspace is undefined"
    );
    if kernel.is_columnar() {
        let mut window = ColumnarWindow::new(ds.dims());
        for u in ds.ids() {
            window.admit(u, ds.row(u), space);
        }
        let mut out = window.into_ids();
        out.sort_unstable();
        return out;
    }
    let mut window: Vec<ObjId> = Vec::new();
    'scan: for u in ds.ids() {
        let mut i = 0;
        while i < window.len() {
            match ds.compare(window[i], u, space) {
                DomRelation::Dominates => continue 'scan,
                DomRelation::DominatedBy => {
                    window.swap_remove(i);
                    // Do not advance: the swapped-in element needs a look.
                }
                DomRelation::Equal | DomRelation::Incomparable => i += 1,
            }
        }
        window.push(u);
    }
    window.sort_unstable();
    window
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::skyline_naive;
    use skycube_types::running_example;

    #[test]
    fn matches_oracle_on_running_example_all_subspaces() {
        let ds = running_example();
        for space in ds.full_space().subsets() {
            assert_eq!(
                skyline_bnl(&ds, space),
                skyline_naive(&ds, space),
                "subspace {space}"
            );
        }
    }

    #[test]
    fn window_eviction_keeps_equal_projections() {
        use skycube_types::Dataset;
        // Two identical points plus one dominated point.
        let ds = Dataset::from_rows(2, vec![vec![5, 5], vec![1, 1], vec![1, 1]]).unwrap();
        assert_eq!(skyline_bnl(&ds, DimMask::full(2)), vec![1, 2]);
    }

    #[test]
    fn later_point_can_evict_multiple() {
        use skycube_types::Dataset;
        let ds =
            Dataset::from_rows(2, vec![vec![3, 1], vec![1, 3], vec![2, 2], vec![0, 0]]).unwrap();
        assert_eq!(skyline_bnl(&ds, DimMask::full(2)), vec![3]);
    }

    use skycube_types::DimMask;
}
