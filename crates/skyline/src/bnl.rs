//! Block-nested-loops skyline (Börzsönyi et al., ICDE 2001).
//!
//! The in-memory variant: a growing *window* of mutually incomparable
//! objects. Each incoming object is compared against the window; it is
//! discarded if dominated, inserted otherwise, evicting any window members it
//! dominates. With the whole window in memory (the paper's datasets fit
//! easily) no temp-file passes are needed and the window at end-of-scan *is*
//! the skyline.

use skycube_types::{Dataset, DimMask, DomRelation, ObjId};

/// Compute the skyline of `space` with block nested loops.
///
/// Returns ids in ascending order.
///
/// # Panics
/// Panics if `space` is empty.
pub fn skyline_bnl(ds: &Dataset, space: DimMask) -> Vec<ObjId> {
    assert!(
        !space.is_empty(),
        "skyline of the empty subspace is undefined"
    );
    let mut window: Vec<ObjId> = Vec::new();
    'scan: for u in ds.ids() {
        let mut i = 0;
        while i < window.len() {
            match ds.compare(window[i], u, space) {
                DomRelation::Dominates => continue 'scan,
                DomRelation::DominatedBy => {
                    window.swap_remove(i);
                    // Do not advance: the swapped-in element needs a look.
                }
                DomRelation::Equal | DomRelation::Incomparable => i += 1,
            }
        }
        window.push(u);
    }
    window.sort_unstable();
    window
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::skyline_naive;
    use skycube_types::running_example;

    #[test]
    fn matches_oracle_on_running_example_all_subspaces() {
        let ds = running_example();
        for space in ds.full_space().subsets() {
            assert_eq!(
                skyline_bnl(&ds, space),
                skyline_naive(&ds, space),
                "subspace {space}"
            );
        }
    }

    #[test]
    fn window_eviction_keeps_equal_projections() {
        use skycube_types::Dataset;
        // Two identical points plus one dominated point.
        let ds = Dataset::from_rows(2, vec![vec![5, 5], vec![1, 1], vec![1, 1]]).unwrap();
        assert_eq!(skyline_bnl(&ds, DimMask::full(2)), vec![1, 2]);
    }

    #[test]
    fn later_point_can_evict_multiple() {
        use skycube_types::Dataset;
        let ds =
            Dataset::from_rows(2, vec![vec![3, 1], vec![1, 3], vec![2, 2], vec![0, 0]]).unwrap();
        assert_eq!(skyline_bnl(&ds, DimMask::full(2)), vec![3]);
    }

    use skycube_types::DimMask;
}
