//! k-dominant skylines (Chan, Jagadish, Tan, Tung, Zhang — SIGMOD'06, cited
//! by the paper as [3]): a high-dimensional relaxation of dominance.
//!
//! `u` **k-dominates** `v` when `u` is no worse than `v` on at least `k`
//! dimensions and strictly better on at least one of them. Every ordinary
//! dominance is an `n`-dominance, so the k-dominant skyline shrinks as `k`
//! decreases — a way to keep skylines selective when dimensionality makes
//! almost everything incomparable. Unlike ordinary dominance the relation is
//! *not* transitive (cyclic k-dominance exists), so filter-window tricks are
//! unsound; this module uses the direct pairwise test.

use skycube_types::{Dataset, DimMask, ObjId};

/// Whether `u` k-dominates `v` in `space`.
///
/// # Panics
/// Panics if `k` is zero or exceeds the dimensionality of `space`.
pub fn k_dominates(ds: &Dataset, u: ObjId, v: ObjId, space: DimMask, k: usize) -> bool {
    assert!(
        k >= 1 && k <= space.len(),
        "k must be within 1..=|space| (got {k} for {space})"
    );
    let (ru, rv) = (ds.row(u), ds.row(v));
    let mut no_worse = 0usize;
    let mut strictly_better = false;
    for d in space.iter() {
        if ru[d] <= rv[d] {
            no_worse += 1;
            if ru[d] < rv[d] {
                strictly_better = true;
            }
        }
    }
    // Any strict dimension is also a ≤ dimension, so a qualifying k-subset
    // exists exactly when both counts clear their thresholds.
    no_worse >= k && strictly_better
}

/// The k-dominant skyline of `space`: objects not k-dominated by any other
/// object. Ids ascending.
///
/// With `k = |space|` this is the ordinary skyline. Because k-dominance is
/// cyclic, an object k-dominated only by objects that are themselves
/// k-dominated is still excluded — matching the original definition.
pub fn k_dominant_skyline(ds: &Dataset, space: DimMask, k: usize) -> Vec<ObjId> {
    assert!(
        !space.is_empty(),
        "skyline of the empty subspace is undefined"
    );
    let n = ds.len() as ObjId;
    let mut out = Vec::new();
    'outer: for v in 0..n {
        for u in 0..n {
            if u != v && k_dominates(ds, u, v, space, k) {
                continue 'outer;
            }
        }
        out.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::skyline_naive;
    use skycube_types::{running_example, Dataset};

    #[test]
    fn n_dominant_equals_ordinary_skyline() {
        let ds = running_example();
        for space in ds.full_space().subsets() {
            assert_eq!(
                k_dominant_skyline(&ds, space, space.len()),
                skyline_naive(&ds, space),
                "subspace {space}"
            );
        }
    }

    #[test]
    fn k_dominant_skyline_shrinks_with_k() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(53);
        let rows: Vec<Vec<i64>> = (0..80)
            .map(|_| (0..5).map(|_| rng.gen_range(0..50)).collect())
            .collect();
        let ds = Dataset::from_rows(5, rows).unwrap();
        let space = ds.full_space();
        let mut previous: Option<Vec<ObjId>> = None;
        for k in (1..=5).rev() {
            let sky = k_dominant_skyline(&ds, space, k);
            if let Some(prev) = &previous {
                // Smaller k ⇒ stronger dominance ⇒ subset.
                assert!(
                    sky.iter().all(|o| prev.contains(o)),
                    "k={k} skyline not contained in k={} skyline",
                    k + 1
                );
            }
            previous = Some(sky);
        }
    }

    #[test]
    fn cyclic_k_dominance_can_empty_the_skyline() {
        // The classic 3-cycle: each point 2-dominates the next in a 3-d
        // space, so no point survives k=2.
        let ds = Dataset::from_rows(3, vec![vec![1, 1, 3], vec![1, 3, 1], vec![3, 1, 1]]).unwrap();
        let space = ds.full_space();
        assert!(k_dominates(&ds, 0, 1, space, 2));
        assert!(k_dominates(&ds, 1, 2, space, 2));
        assert!(k_dominates(&ds, 2, 0, space, 2));
        assert!(k_dominant_skyline(&ds, space, 2).is_empty());
        // But the ordinary (3-dominant) skyline keeps all three.
        assert_eq!(k_dominant_skyline(&ds, space, 3), vec![0, 1, 2]);
    }

    #[test]
    fn equal_objects_do_not_k_dominate() {
        let ds = Dataset::from_rows(2, vec![vec![3, 3], vec![3, 3]]).unwrap();
        assert!(!k_dominates(&ds, 0, 1, ds.full_space(), 1));
        assert_eq!(k_dominant_skyline(&ds, ds.full_space(), 1), vec![0, 1]);
    }

    #[test]
    #[should_panic]
    fn k_zero_panics() {
        let ds = running_example();
        k_dominates(&ds, 0, 1, ds.full_space(), 0);
    }

    #[test]
    #[should_panic]
    fn k_exceeding_dims_panics() {
        let ds = running_example();
        k_dominates(&ds, 0, 1, ds.full_space(), 5);
    }
}
