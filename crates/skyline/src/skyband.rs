//! k-skybands and constrained skylines — the standard generalizations of
//! the skyline operator that downstream applications of a skyline engine
//! expect (both introduced alongside BBS in Papadias et al., SIGMOD'03).
//!
//! - The **k-skyband** contains every object dominated by *fewer than* `k`
//!   others; `k = 1` is the ordinary skyline. It is the candidate set for
//!   any top-k query with a monotone preference function.
//! - A **constrained skyline** is the skyline of the objects falling inside
//!   per-dimension value ranges.

use skycube_types::{Dataset, DimMask, ObjId, Value};

/// The k-skyband of `space`: objects dominated by fewer than `k` other
/// objects. Ids ascending.
///
/// Objects with equal projections do not dominate each other, so value
/// sharing does not consume dominance budget — consistent with the skyline
/// semantics used everywhere else in this workspace.
///
/// # Panics
/// Panics if `space` is empty or `k` is zero.
pub fn k_skyband(ds: &Dataset, space: DimMask, k: usize) -> Vec<ObjId> {
    assert!(
        !space.is_empty(),
        "skyband of the empty subspace is undefined"
    );
    assert!(k >= 1, "the 0-skyband is empty by definition; use k ≥ 1");
    // Presort by subspace sum: dominators of `o` always precede `o`, so a
    // single forward pass with counters suffices (an SFS-style skyband).
    let mut order: Vec<ObjId> = ds.ids().collect();
    let sums: Vec<i128> = ds.ids().map(|o| ds.sum_over(o, space)).collect();
    order.sort_unstable_by_key(|&o| sums[o as usize]);

    let mut band: Vec<ObjId> = Vec::new();
    for (pos, &u) in order.iter().enumerate() {
        // Dominators of u all precede it in sum order (a dominator has a
        // strictly smaller subspace sum), so counting up to k among the
        // prefix decides membership.
        let mut dominated_by = 0usize;
        for &w in order[..pos].iter() {
            if ds.dominates(w, u, space) {
                dominated_by += 1;
                if dominated_by >= k {
                    break;
                }
            }
        }
        if dominated_by < k {
            band.push(u);
        }
    }
    band.sort_unstable();
    band
}

/// Per-dimension closed value ranges; `None` leaves a dimension
/// unconstrained.
pub type Ranges = Vec<Option<(Value, Value)>>;

/// The skyline of `space` among the objects satisfying `ranges`
/// (the constrained skyline). Ids ascending.
///
/// # Panics
/// Panics if `space` is empty or `ranges.len() != ds.dims()`.
pub fn constrained_skyline(ds: &Dataset, space: DimMask, ranges: &Ranges) -> Vec<ObjId> {
    assert!(
        !space.is_empty(),
        "skyline of the empty subspace is undefined"
    );
    assert_eq!(ranges.len(), ds.dims(), "one range slot per dimension");
    let satisfies = |o: ObjId| -> bool {
        let row = ds.row(o);
        ranges
            .iter()
            .enumerate()
            .all(|(d, r)| r.is_none_or(|(lo, hi)| (lo..=hi).contains(&row[d])))
    };
    let candidates: Vec<ObjId> = ds.ids().filter(|&o| satisfies(o)).collect();
    // SFS over the constrained candidates.
    let mut order = candidates;
    let key: Vec<i128> = order.iter().map(|&o| ds.sum_over(o, space)).collect();
    let mut idx: Vec<usize> = (0..order.len()).collect();
    idx.sort_unstable_by_key(|&i| key[i]);
    order = idx.into_iter().map(|i| order[i]).collect();
    let mut sky = crate::sfs::filter_presorted(ds, space, &order);
    sky.sort_unstable();
    sky
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::skyline_naive;
    use skycube_types::{running_example, Dataset};

    /// Brute-force skyband oracle.
    fn skyband_naive(ds: &Dataset, space: DimMask, k: usize) -> Vec<ObjId> {
        ds.ids()
            .filter(|&u| ds.ids().filter(|&w| ds.dominates(w, u, space)).count() < k)
            .collect()
    }

    #[test]
    fn skyband_1_is_the_skyline() {
        let ds = running_example();
        for space in ds.full_space().subsets() {
            assert_eq!(k_skyband(&ds, space, 1), skyline_naive(&ds, space));
        }
    }

    #[test]
    fn skyband_matches_oracle_for_all_k() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(103);
        for trial in 0..25 {
            let dims = rng.gen_range(1..=4);
            let n = rng.gen_range(1..=80);
            let rows: Vec<Vec<i64>> = (0..n)
                .map(|_| (0..dims).map(|_| rng.gen_range(0..6)).collect())
                .collect();
            let ds = Dataset::from_rows(dims, rows).unwrap();
            let space = ds.full_space();
            for k in 1..=4 {
                assert_eq!(
                    k_skyband(&ds, space, k),
                    skyband_naive(&ds, space, k),
                    "trial {trial} k={k}"
                );
            }
        }
    }

    #[test]
    fn skyband_grows_with_k() {
        let ds = running_example();
        let space = ds.full_space();
        let mut prev = Vec::new();
        for k in 1..=5 {
            let band = k_skyband(&ds, space, k);
            assert!(prev.iter().all(|o| band.contains(o)), "k={k} lost members");
            prev = band;
        }
        // Everything is dominated by fewer than 5 others in a 5-object set.
        assert_eq!(prev.len(), 5);
    }

    #[test]
    fn ties_do_not_consume_budget() {
        let ds = Dataset::from_rows(1, vec![vec![1], vec![1], vec![2]]).unwrap();
        let space = DimMask::single(0);
        // Object 2 is dominated by two *distinct-valued* objects? No — both
        // dominators share value 1 but are separate objects: count = 2.
        assert_eq!(k_skyband(&ds, space, 1), vec![0, 1]);
        assert_eq!(k_skyband(&ds, space, 2), vec![0, 1]);
        assert_eq!(k_skyband(&ds, space, 3), vec![0, 1, 2]);
    }

    #[test]
    fn constrained_skyline_matches_filtered_oracle() {
        let ds = running_example();
        // Constrain A ≤ 5 (drops P4) and D ≤ 5 (drops P1).
        let ranges: Ranges = vec![Some((0, 5)), None, None, Some((0, 5))];
        let space = ds.full_space();
        let sky = constrained_skyline(&ds, space, &ranges);
        // Among P2, P3, P5: P5 dominates-or-equals P3? P5=(2,4,9,3),
        // P3=(5,4,9,3) → P5 dominates P3. Skyline: P2, P5.
        assert_eq!(sky, vec![1, 4]);
    }

    #[test]
    fn unconstrained_equals_plain_skyline() {
        let ds = running_example();
        let ranges: Ranges = vec![None; 4];
        for space in ds.full_space().subsets() {
            assert_eq!(
                constrained_skyline(&ds, space, &ranges),
                skyline_naive(&ds, space)
            );
        }
    }

    #[test]
    fn empty_constraint_region() {
        let ds = running_example();
        let ranges: Ranges = vec![Some((100, 200)), None, None, None];
        assert!(constrained_skyline(&ds, ds.full_space(), &ranges).is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_k_panics() {
        let ds = running_example();
        k_skyband(&ds, ds.full_space(), 0);
    }
}
