//! Bitmap skyline (Tan, Eng, Ooi — VLDB'01, the paper's reference [12]):
//! skyline membership by bitwise operations over rank-compressed value
//! bitslices.
//!
//! For each dimension the distinct values are ranked; the index stores, per
//! dimension and rank, the bitset of objects whose value is ≤ (and <) that
//! rank's value. An object `o` is dominated exactly by
//! `(⋀_d LE_d(o)) ∧ (⋁_d LT_d(o))` — no worse everywhere, strictly better
//! somewhere — so the skyline test is a handful of word-parallel AND/OR
//! passes per object.
//!
//! Memory is O(dims × distinct-values × n) bits, the structure's classic
//! trade-off: superb on low-cardinality dimensions, impractical on raw
//! high-cardinality data (the original paper assumes coarse domains).
//! [`BitmapIndex::build`] is exact for any data; callers decide whether the
//! footprint fits.

use skycube_types::{Dataset, DimMask, ObjId, Value};

/// A plain bitset over object ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// All-zero bitset for `n` objects.
    pub fn zeros(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Whether bit `i` is set.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// `self &= other`.
    pub fn and_assign(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self |= other`.
    pub fn or_assign(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Whether `self & other` has any bit set.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Per-dimension rank bitslices.
struct DimSlices {
    /// Sorted distinct values of the dimension.
    values: Vec<Value>,
    /// `le[r]`: objects with value ≤ `values[r]`. `le[r-1]` doubles as the
    /// strict (<) slice of rank `r`; rank 0 has an all-zero strict slice.
    le: Vec<BitSet>,
}

/// The bitmap skyline index over one dataset.
pub struct BitmapIndex<'a> {
    ds: &'a Dataset,
    dims: Vec<DimSlices>,
    zero: BitSet,
}

impl<'a> BitmapIndex<'a> {
    /// Build the index. O(n log n) per dimension plus the bitslice fill.
    pub fn build(ds: &'a Dataset) -> Self {
        let n = ds.len();
        let mut dims = Vec::with_capacity(ds.dims());
        for d in 0..ds.dims() {
            let mut order: Vec<ObjId> = ds.ids().collect();
            order.sort_unstable_by_key(|&o| ds.value(o, d));
            let mut values: Vec<Value> = Vec::new();
            let mut le: Vec<BitSet> = Vec::new();
            let mut current = BitSet::zeros(n);
            for &o in &order {
                let v = ds.value(o, d);
                if values.last() != Some(&v) {
                    if !values.is_empty() {
                        le.push(current.clone());
                    }
                    values.push(v);
                }
                current.set(o as usize);
            }
            if !values.is_empty() {
                le.push(current);
            }
            dims.push(DimSlices { values, le });
        }
        BitmapIndex {
            ds,
            dims,
            zero: BitSet::zeros(n),
        }
    }

    /// The bitslice of objects ≤ `o` in dimension `d`.
    fn le_slice(&self, o: ObjId, d: usize) -> &BitSet {
        let s = &self.dims[d];
        let r = s
            .values
            .binary_search(&self.ds.value(o, d))
            .expect("every object value is indexed");
        &s.le[r]
    }

    /// The bitslice of objects < `o` in dimension `d` (all-zero at rank 0).
    fn lt_slice(&self, o: ObjId, d: usize) -> &BitSet {
        let s = &self.dims[d];
        let r = s
            .values
            .binary_search(&self.ds.value(o, d))
            .expect("every object value is indexed");
        if r == 0 {
            &self.zero
        } else {
            &s.le[r - 1]
        }
    }

    /// Whether object `o` is in the skyline of `space`: no object is ≤ on
    /// all dimensions of `space` and < on one.
    pub fn is_skyline(&self, o: ObjId, space: DimMask) -> bool {
        assert!(
            !space.is_empty(),
            "skyline of the empty subspace is undefined"
        );
        let mut no_worse: Option<BitSet> = None;
        let mut strictly_better = BitSet::zeros(self.ds.len());
        for d in space.iter() {
            match &mut no_worse {
                None => no_worse = Some(self.le_slice(o, d).clone()),
                Some(a) => a.and_assign(self.le_slice(o, d)),
            }
            strictly_better.or_assign(self.lt_slice(o, d));
        }
        let no_worse = no_worse.expect("space is non-empty");
        !no_worse.intersects(&strictly_better)
    }

    /// The skyline of `space`: one membership test per object. Ids ascending.
    pub fn skyline(&self, space: DimMask) -> Vec<ObjId> {
        self.ds
            .ids()
            .filter(|&o| self.is_skyline(o, space))
            .collect()
    }
}

/// Convenience: build the bitmap index and extract one skyline.
pub fn skyline_bitmap(ds: &Dataset, space: DimMask) -> Vec<ObjId> {
    BitmapIndex::build(ds).skyline(space)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::skyline_naive;
    use skycube_types::{running_example, Dataset};

    #[test]
    fn bitset_primitives() {
        let mut a = BitSet::zeros(130);
        a.set(0);
        a.set(64);
        a.set(129);
        assert!(a.get(64));
        assert!(!a.get(63));
        assert_eq!(a.count(), 3);
        let mut b = BitSet::zeros(130);
        b.set(64);
        assert!(a.intersects(&b));
        a.and_assign(&b);
        assert_eq!(a.count(), 1);
        b.set(1);
        a.or_assign(&b);
        assert!(a.get(1));
    }

    #[test]
    fn matches_oracle_on_running_example() {
        let ds = running_example();
        let index = BitmapIndex::build(&ds);
        for space in ds.full_space().subsets() {
            assert_eq!(index.skyline(space), skyline_naive(&ds, space));
        }
    }

    #[test]
    fn matches_oracle_on_random_coarse_domains() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(83);
        for trial in 0..20 {
            let dims = rng.gen_range(1..=4);
            let n = rng.gen_range(1..=300);
            let rows: Vec<Vec<i64>> = (0..n)
                .map(|_| (0..dims).map(|_| rng.gen_range(-5..5)).collect())
                .collect();
            let ds = Dataset::from_rows(dims, rows).unwrap();
            let index = BitmapIndex::build(&ds);
            for space in ds.full_space().subsets() {
                assert_eq!(
                    index.skyline(space),
                    skyline_naive(&ds, space),
                    "trial {trial} subspace {space}"
                );
            }
        }
    }

    #[test]
    fn membership_test_is_pointwise() {
        let ds = running_example();
        let index = BitmapIndex::build(&ds);
        // P3 (id 2) is in skyline(BD) but not in skyline(ABCD).
        assert!(index.is_skyline(2, DimMask::parse("BD").unwrap()));
        assert!(!index.is_skyline(2, ds.full_space()));
    }

    #[test]
    fn equal_objects_are_skyline_together() {
        let ds = Dataset::from_rows(2, vec![vec![1, 1], vec![1, 1], vec![2, 0]]).unwrap();
        assert_eq!(skyline_bitmap(&ds, ds.full_space()), vec![0, 1, 2]);
    }

    use skycube_types::DimMask;
}
