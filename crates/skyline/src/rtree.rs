//! A bulk-loaded R-tree over a dataset — the index substrate behind the
//! branch-and-bound skyline algorithm ([`crate::skyline_bbs`], Papadias et
//! al. SIGMOD'03, the paper's reference [7]).
//!
//! The tree is built once over the full space with *sort-tile-recursive*
//! (STR) packing: points are recursively sliced along successive dimensions
//! into tiles of the target leaf size, giving near-full leaves and
//! well-shaped MBRs without insertion logic. Queries may target any
//! subspace: an MBR's lower corner projected onto the query subspace is a
//! valid lower bound there, which is all BBS needs.

use skycube_types::{Dataset, DimMask, ObjId, Value};

/// Maximum entries per node (leaf and internal).
pub const NODE_CAPACITY: usize = 16;

/// Minimum bounding rectangle over the full space.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mbr {
    /// Per-dimension minima (the lower corner — the best possible point).
    pub min: Vec<Value>,
    /// Per-dimension maxima.
    pub max: Vec<Value>,
}

impl Mbr {
    fn of_point(row: &[Value]) -> Mbr {
        Mbr {
            min: row.to_vec(),
            max: row.to_vec(),
        }
    }

    fn merge(&mut self, other: &Mbr) {
        for d in 0..self.min.len() {
            self.min[d] = self.min[d].min(other.min[d]);
            self.max[d] = self.max[d].max(other.max[d]);
        }
    }

    /// Sum of the lower corner over `space` — the BBS priority ("mindist"
    /// towards the all-minima corner).
    pub fn mindist(&self, space: DimMask) -> i128 {
        space.iter().map(|d| self.min[d] as i128).sum()
    }
}

/// One R-tree node: either a leaf holding object ids or an internal node
/// holding child node indexes. Nodes live in a flat arena.
#[derive(Debug)]
pub enum Node {
    /// Leaf entries: object ids with their (point) MBRs implicit.
    Leaf {
        /// Ids of the contained points.
        entries: Vec<ObjId>,
        /// Bounding box of the contained points.
        mbr: Mbr,
    },
    /// Internal entries: child node indexes.
    Inner {
        /// Arena indexes of the children.
        children: Vec<usize>,
        /// Bounding box of the children.
        mbr: Mbr,
    },
}

impl Node {
    /// The node's bounding box.
    pub fn mbr(&self) -> &Mbr {
        match self {
            Node::Leaf { mbr, .. } | Node::Inner { mbr, .. } => mbr,
        }
    }
}

/// A packed R-tree over one dataset.
pub struct RTree<'a> {
    ds: &'a Dataset,
    nodes: Vec<Node>,
    root: Option<usize>,
}

impl<'a> RTree<'a> {
    /// Bulk-load the tree with STR packing. O(n log n).
    pub fn build(ds: &'a Dataset) -> Self {
        let ids: Vec<ObjId> = ds.ids().collect();
        let mut tree = RTree {
            ds,
            nodes: Vec::new(),
            root: None,
        };
        if ids.is_empty() {
            return tree;
        }
        // Tile the points into leaves.
        let mut ids = ids;
        let mut leaves: Vec<usize> = Vec::new();
        tree.pack_leaves(&mut ids, 0, &mut leaves);
        // Stack levels of internal nodes until one root remains.
        let mut level = leaves;
        while level.len() > 1 {
            let mut next: Vec<usize> = Vec::new();
            // Group children by their lower-corner sum so siblings are
            // spatially close (a light-weight packing for upper levels).
            let full = tree.ds.full_space();
            level.sort_by_key(|&n| tree.nodes[n].mbr().mindist(full));
            for chunk in level.chunks(NODE_CAPACITY) {
                let mut mbr = tree.nodes[chunk[0]].mbr().clone();
                for &c in &chunk[1..] {
                    let child_mbr = tree.nodes[c].mbr().clone();
                    mbr.merge(&child_mbr);
                }
                let idx = tree.nodes.len();
                tree.nodes.push(Node::Inner {
                    children: chunk.to_vec(),
                    mbr,
                });
                next.push(idx);
            }
            level = next;
        }
        tree.root = level.first().copied();
        tree
    }

    /// STR: recursively slice `ids` along dimension `dim`, then tile.
    fn pack_leaves(&mut self, ids: &mut [ObjId], dim: usize, leaves: &mut Vec<usize>) {
        let n = ids.len();
        if n <= NODE_CAPACITY || dim + 1 >= self.ds.dims() {
            // Final dimension (or small set): sort and cut into leaves.
            ids.sort_unstable_by_key(|&o| self.ds.value(o, dim));
            for chunk in ids.chunks(NODE_CAPACITY) {
                let mut mbr = Mbr::of_point(self.ds.row(chunk[0]));
                for &o in &chunk[1..] {
                    mbr.merge(&Mbr::of_point(self.ds.row(o)));
                }
                let idx = self.nodes.len();
                self.nodes.push(Node::Leaf {
                    entries: chunk.to_vec(),
                    mbr,
                });
                leaves.push(idx);
            }
            return;
        }
        // Number of slabs: √(pages) per STR, applied one dimension at a time.
        let pages = n.div_ceil(NODE_CAPACITY);
        let slabs = (pages as f64).sqrt().ceil() as usize;
        let slab_size = n.div_ceil(slabs);
        ids.sort_unstable_by_key(|&o| self.ds.value(o, dim));
        let mut start = 0;
        while start < n {
            let end = (start + slab_size).min(n);
            self.pack_leaves_inner(&mut ids[start..end], dim + 1, leaves);
            start = end;
        }
    }

    // Monomorphization helper: recursion via a second name keeps borrowck
    // simple for the slice split above.
    fn pack_leaves_inner(&mut self, ids: &mut [ObjId], dim: usize, leaves: &mut Vec<usize>) {
        self.pack_leaves(ids, dim, leaves)
    }

    /// The arena (for traversal by the BBS module and for tests).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The root node index, if the tree is non-empty.
    pub fn root(&self) -> Option<usize> {
        self.root
    }

    /// The dataset the tree indexes.
    pub fn dataset(&self) -> &'a Dataset {
        self.ds
    }

    /// Height of the tree (0 for empty, 1 for a single leaf).
    pub fn height(&self) -> usize {
        let Some(mut node) = self.root else { return 0 };
        let mut h = 1;
        loop {
            match &self.nodes[node] {
                Node::Leaf { .. } => return h,
                Node::Inner { children, .. } => {
                    node = children[0];
                    h += 1;
                }
            }
        }
    }

    /// Validate structural invariants (tests): MBR containment and full
    /// coverage of all object ids exactly once.
    pub fn validate(&self) -> Result<(), String> {
        let Some(root) = self.root else {
            return if self.ds.is_empty() {
                Ok(())
            } else {
                Err("non-empty dataset with empty tree".into())
            };
        };
        let mut seen = vec![false; self.ds.len()];
        self.validate_node(root, &mut seen)?;
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(format!("object {missing} not covered by any leaf"));
        }
        Ok(())
    }

    fn validate_node(&self, idx: usize, seen: &mut [bool]) -> Result<(), String> {
        match &self.nodes[idx] {
            Node::Leaf { entries, mbr } => {
                if entries.is_empty() {
                    return Err("empty leaf".into());
                }
                for &o in entries {
                    if seen[o as usize] {
                        return Err(format!("object {o} covered twice"));
                    }
                    seen[o as usize] = true;
                    let row = self.ds.row(o);
                    for (d, &v) in row.iter().enumerate() {
                        if v < mbr.min[d] || v > mbr.max[d] {
                            return Err(format!("object {o} outside leaf MBR"));
                        }
                    }
                }
            }
            Node::Inner { children, mbr } => {
                if children.is_empty() {
                    return Err("empty inner node".into());
                }
                for &c in children {
                    let child = self.nodes[c].mbr();
                    for d in 0..self.ds.dims() {
                        if child.min[d] < mbr.min[d] || child.max[d] > mbr.max[d] {
                            return Err("child MBR escapes parent".into());
                        }
                    }
                    self.validate_node(c, seen)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycube_types::running_example;

    #[test]
    fn builds_and_validates_on_small_input() {
        let ds = running_example();
        let tree = RTree::build(&ds);
        tree.validate().unwrap();
        assert_eq!(tree.height(), 1, "5 points fit one leaf");
    }

    #[test]
    fn builds_and_validates_on_larger_input() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(61);
        let rows: Vec<Vec<Value>> = (0..5_000)
            .map(|_| (0..4).map(|_| rng.gen_range(0..1000)).collect())
            .collect();
        let ds = Dataset::from_rows(4, rows).unwrap();
        let tree = RTree::build(&ds);
        tree.validate().unwrap();
        assert!(tree.height() >= 3, "5000 points need several levels");
        // Root MBR covers the data extremes.
        let root = tree.nodes()[tree.root().unwrap()].mbr();
        for d in 0..4 {
            let lo = ds.ids().map(|o| ds.value(o, d)).min().unwrap();
            let hi = ds.ids().map(|o| ds.value(o, d)).max().unwrap();
            assert_eq!(root.min[d], lo);
            assert_eq!(root.max[d], hi);
        }
    }

    #[test]
    fn empty_dataset_empty_tree() {
        let ds = Dataset::from_rows(3, vec![]).unwrap();
        let tree = RTree::build(&ds);
        assert!(tree.root().is_none());
        tree.validate().unwrap();
        assert_eq!(tree.height(), 0);
    }

    #[test]
    fn mindist_projects_to_subspace() {
        let mbr = Mbr {
            min: vec![1, 2, 3],
            max: vec![9, 9, 9],
        };
        assert_eq!(mbr.mindist(DimMask::full(3)), 6);
        assert_eq!(mbr.mindist(DimMask::from_dims([0, 2])), 4);
    }

    use skycube_types::Dataset;
}
