//! Sort-first skyline (Chomicki et al., ICDE 2003).
//!
//! Objects are presorted by a *topological* key for dominance in the target
//! subspace — if `u` dominates `v` then `u` sorts strictly before `v`. After
//! that, every scanned object only needs to be compared against already
//! confirmed skyline members, and nothing is ever evicted from the window.
//!
//! Two topological keys are provided:
//! - [`SortKey::Sum`]: ascending sum of coordinates over the subspace
//!   (dominance implies a strictly smaller sum) — the classic SFS choice;
//! - [`SortKey::Lex`]: lexicographic order over the subspace's dimensions —
//!   the order Skyey shares down its subspace-enumeration tree.

use skycube_types::{ColumnarWindow, Dataset, DimMask, DomRelation, DominanceKernel, ObjId};

/// Presort key used by [`skyline_sfs_with`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SortKey {
    /// Ascending sum of coordinates over the subspace.
    #[default]
    Sum,
    /// Lexicographic over the subspace's dimensions (ascending dim order).
    Lex,
}

/// Compute the skyline of `space` with sort-first-skyline and the given key.
///
/// # Panics
/// Panics if `space` is empty.
pub fn skyline_sfs_with(ds: &Dataset, space: DimMask, key: SortKey) -> Vec<ObjId> {
    skyline_sfs_kernel(ds, space, key, DominanceKernel::default())
}

/// [`skyline_sfs_with`] with an explicit dominance kernel.
///
/// # Panics
/// Panics if `space` is empty.
pub fn skyline_sfs_kernel(
    ds: &Dataset,
    space: DimMask,
    key: SortKey,
    kernel: DominanceKernel,
) -> Vec<ObjId> {
    assert!(
        !space.is_empty(),
        "skyline of the empty subspace is undefined"
    );
    let mut order: Vec<ObjId> = ds.ids().collect();
    match key {
        SortKey::Sum => {
            let sums: Vec<i128> = order.iter().map(|&o| ds.sum_over(o, space)).collect();
            order.sort_unstable_by_key(|&o| sums[o as usize]);
        }
        SortKey::Lex => {
            order.sort_unstable_by(|&a, &b| ds.cmp_lex(a, b, space));
        }
    }
    let mut skyline = filter_presorted_with(ds, space, &order, kernel);
    skyline.sort_unstable();
    skyline
}

/// Compute the skyline of `space` with the default (sum) key.
pub fn skyline_sfs(ds: &Dataset, space: DimMask) -> Vec<ObjId> {
    skyline_sfs_with(ds, space, SortKey::Sum)
}

/// SFS filtering pass over an order that is already topological for
/// dominance in `space`: no object may be dominated by a later one.
///
/// Shared with the Skyey baseline, which maintains such orders incrementally
/// down its subspace tree. Returns skyline ids in scan order.
pub fn filter_presorted(ds: &Dataset, space: DimMask, order: &[ObjId]) -> Vec<ObjId> {
    let mut window: Vec<ObjId> = Vec::new();
    'scan: for &u in order {
        for &w in &window {
            match ds.compare(w, u, space) {
                DomRelation::Dominates => continue 'scan,
                DomRelation::DominatedBy => {
                    // Violates the topological-order contract.
                    debug_assert!(false, "presorted order not topological");
                }
                DomRelation::Equal | DomRelation::Incomparable => {}
            }
        }
        window.push(u);
    }
    window
}

/// [`filter_presorted`] with an explicit dominance kernel. The columnar
/// path keeps the confirmed window column-wise so every "does anyone
/// dominate me?" probe is a contiguous blocked sweep; nothing is ever
/// evicted under the topological-order contract, so the window ids in scan
/// order are exactly the scalar result.
pub fn filter_presorted_with(
    ds: &Dataset,
    space: DimMask,
    order: &[ObjId],
    kernel: DominanceKernel,
) -> Vec<ObjId> {
    if !kernel.is_columnar() {
        return filter_presorted(ds, space, order);
    }
    let mut window = ColumnarWindow::new(ds.dims());
    for &u in order {
        let row = ds.row(u);
        if !window.any_dominates(row, space) {
            window.push(u, row);
        }
    }
    window.into_ids()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::skyline_naive;
    use skycube_types::{running_example, Dataset};
    use skycube_types::{DominanceKernel, ObjId};

    #[test]
    fn both_keys_match_oracle_on_running_example() {
        let ds = running_example();
        for space in ds.full_space().subsets() {
            let expect = skyline_naive(&ds, space);
            for kernel in DominanceKernel::ALL {
                assert_eq!(skyline_sfs_kernel(&ds, space, SortKey::Sum, kernel), expect);
                assert_eq!(skyline_sfs_kernel(&ds, space, SortKey::Lex, kernel), expect);
            }
        }
    }

    #[test]
    fn filter_presorted_kernels_agree_in_scan_order() {
        let ds = running_example();
        for space in ds.full_space().subsets() {
            let mut order: Vec<ObjId> = ds.ids().collect();
            order.sort_unstable_by(|&a, &b| ds.cmp_lex(a, b, space));
            assert_eq!(
                filter_presorted(&ds, space, &order),
                filter_presorted_with(&ds, space, &order, DominanceKernel::Columnar),
                "space {space}"
            );
        }
    }

    #[test]
    fn ties_in_sum_are_handled() {
        // (1,3) and (3,1) tie on sum and are incomparable; (2,2) ties too.
        let ds = Dataset::from_rows(2, vec![vec![1, 3], vec![3, 1], vec![2, 2]]).unwrap();
        let sky = skyline_sfs(&ds, DimMask::full(2));
        assert_eq!(sky, vec![0, 1, 2]);
    }

    #[test]
    fn equal_projections_kept() {
        let ds = Dataset::from_rows(2, vec![vec![1, 1], vec![1, 1], vec![0, 5]]).unwrap();
        assert_eq!(skyline_sfs(&ds, DimMask::full(2)), vec![0, 1, 2]);
    }

    #[test]
    fn filter_presorted_respects_scan_order() {
        let ds = Dataset::from_rows(1, vec![vec![2], vec![1], vec![3]]).unwrap();
        let space = DimMask::single(0);
        // Topological order for 1-d: ascending value → ids 1,0,2.
        let sky = filter_presorted(&ds, space, &[1, 0, 2]);
        assert_eq!(sky, vec![1]);
    }

    use skycube_types::DimMask;
}
