//! Durability for the resident daemon: a checksummed append-only mutation
//! WAL, checkpoint manifests, and the crash-recovery driver.
//!
//! The contract is *fsync-before-apply*: every accepted `insert`/`delete`
//! is appended to the log and fsync'd **with its generation stamp** before
//! the engine patches the cube. A `kill -9` at any instant therefore loses
//! at most mutations the client was never acknowledged for, and restart
//! recovers exactly the cube a clean run would have produced: load the
//! newest checkpoint (or rebuild from the base dataset when none exists),
//! then replay every record stamped past it, in order, through the same
//! [`StellarEngine`] maintenance path the live daemon uses.
//!
//! # Log layout
//!
//! All integers native-endian, same convention (and same four-lane FNV-1a
//! [`checksum`]) as the binary cube format in
//! `crates/stellar/src/persist/binary.rs`:
//!
//! ```text
//! offset  size     field
//! 0       8        magic "SKYWAL01"
//! 8       4        format version (currently 1)
//! 12      4        endian probe 0x0102_0304
//! 16      4        dims
//! 20      4        reserved (zero)
//! 24      8        base generation (durable generation the log starts after)
//! 32      8        FNV-1a checksum of bytes 0..32
//! 40      ...      records
//! ```
//!
//! Each record:
//!
//! ```text
//! offset  size     field
//! 0       4        kind (1 = insert, 2 = delete)
//! 4       4        payload words (dims for insert, 1 for delete)
//! 8       8        generation stamp (base + 1, base + 2, … contiguous)
//! 16      8×words  payload (insert: the row's values; delete: the object id)
//! ...     8        FNV-1a checksum of the record bytes above
//! ```
//!
//! A torn or garbled tail — a partial record from a crash mid-append, or
//! flipped bytes — is detected by length/kind/checksum/stamp validation,
//! reported as a structured [`TornTail`] diagnostic, and truncated so the
//! log is clean for the next append. It is **never** a panic, and a record
//! that fails validation never reaches the engine.
//!
//! # Checkpoints
//!
//! [`write_checkpoint`] makes the durable prefix cheap to load again: the
//! engine's rows (`<wal>.ckpt<G>.rows`, checksummed) and its cube in the
//! PR 8 zero-copy binary format (`<wal>.ckpt<G>.cube`) are written via
//! tmp+rename, and only then does the tiny manifest (`<wal>.meta`) commit
//! the checkpoint by naming generation `G`. A crash anywhere in between
//! leaves the previous checkpoint (or none) fully intact — generation-
//! suffixed filenames mean a half-written successor never clobbers it.
//! After the manifest commits, [`Wal::reset`] truncates the log to a fresh
//! header based at `G`; replay skips records stamped ≤ the checkpoint
//! generation, so a crash between manifest commit and log reset is also
//! exact.

use crate::error::ServeError;
use skycube_stellar::{load_cube, save_cube_binary, CompressedSkylineCube, Stellar, StellarEngine};
use skycube_types::{checksum, Dataset, Error, ObjId, Result, Value};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Log file magic. Distinct from the binary cube (`SKYBIN01`) and rows
/// (`SKYROW01`) magics in many byte positions.
pub const WAL_MAGIC: [u8; 8] = *b"SKYWAL01";

/// Checkpoint rows-file magic.
pub const ROWS_MAGIC: [u8; 8] = *b"SKYROW01";

/// Checkpoint manifest magic.
pub const META_MAGIC: [u8; 8] = *b"SKYCKM01";

/// Current format version (shared by log, rows file, and manifest).
pub const WAL_VERSION: u32 = 1;

/// Written natively, compared on load — a mismatch means the file came
/// from a machine with the other byte order and must be rejected.
const ENDIAN_PROBE: u32 = 0x0102_0304;

/// Fixed log header size in bytes.
const WAL_HEADER_LEN: usize = 40;

/// Fixed part of a record (kind, words, generation) in bytes.
const RECORD_HEADER_LEN: usize = 16;

/// Record kind tags.
const KIND_INSERT: u32 = 1;
const KIND_DELETE: u32 = 2;

fn corrupt(what: impl Into<String>) -> Error {
    Error::Corrupt {
        line: 0,
        what: what.into(),
    }
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_ne_bytes(bytes[at..at + 4].try_into().unwrap())
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_ne_bytes(bytes[at..at + 8].try_into().unwrap())
}

/// One durable mutation, exactly as stamped in the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// An accepted `insert`: the full row, stamped with the generation the
    /// engine reached by applying it.
    Insert {
        /// Durable generation stamp (contiguous from the log's base).
        generation: u64,
        /// The inserted row (`dims` values).
        row: Vec<Value>,
    },
    /// An accepted `delete` of the object that held `id` at that
    /// generation (ids are positional; replay in stamp order is exact).
    Delete {
        /// Durable generation stamp.
        generation: u64,
        /// The deleted object id, valid at `generation - 1`.
        id: ObjId,
    },
}

impl WalRecord {
    /// The record's durable generation stamp.
    pub fn generation(&self) -> u64 {
        match self {
            WalRecord::Insert { generation, .. } | WalRecord::Delete { generation, .. } => {
                *generation
            }
        }
    }
}

/// Structured diagnostic for a torn or garbled log tail: which record
/// failed, where, why, and how many valid records were kept. The failing
/// record and everything after it were truncated away.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// 0-based index of the record that failed validation.
    pub record: u64,
    /// Byte offset of that record in the log file.
    pub offset: u64,
    /// What failed (truncation, bad kind, checksum mismatch, bad stamp).
    pub reason: String,
}

impl std::fmt::Display for TornTail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "torn wal tail: record {} at byte offset {} failed validation ({}); \
             truncated the log there",
            self.record, self.offset, self.reason
        )
    }
}

/// The checksummed append-only mutation log. See the module docs for the
/// on-disk layout and the durability contract.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    dims: usize,
    base_generation: u64,
    records: u64,
}

/// What [`Wal::open`] found: the writable log positioned for append, every
/// valid record in stamp order, and the torn-tail diagnostic if the file
/// had to be truncated.
#[derive(Debug)]
pub struct WalOpen {
    /// The log, ready for [`Wal::append_insert`] / [`Wal::append_delete`].
    pub wal: Wal,
    /// All valid records, in stamp order.
    pub records: Vec<WalRecord>,
    /// Present iff a torn/garbled tail was truncated.
    pub torn: Option<TornTail>,
}

fn header_bytes(dims: usize, base_generation: u64) -> [u8; WAL_HEADER_LEN] {
    let mut h = [0u8; WAL_HEADER_LEN];
    h[0..8].copy_from_slice(&WAL_MAGIC);
    h[8..12].copy_from_slice(&WAL_VERSION.to_ne_bytes());
    h[12..16].copy_from_slice(&ENDIAN_PROBE.to_ne_bytes());
    h[16..20].copy_from_slice(&(dims as u32).to_ne_bytes());
    h[24..32].copy_from_slice(&base_generation.to_ne_bytes());
    let sum = checksum(&h[..32]);
    h[32..40].copy_from_slice(&sum.to_ne_bytes());
    h
}

fn encode_record(kind: u32, generation: u64, payload: &[u64]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(RECORD_HEADER_LEN + payload.len() * 8 + 8);
    buf.extend_from_slice(&kind.to_ne_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_ne_bytes());
    buf.extend_from_slice(&generation.to_ne_bytes());
    for word in payload {
        buf.extend_from_slice(&word.to_ne_bytes());
    }
    let sum = checksum(&buf);
    buf.extend_from_slice(&sum.to_ne_bytes());
    buf
}

impl Wal {
    /// Create a fresh log at `path` (truncating any existing file),
    /// fsync'ing the header before returning.
    pub fn create(path: &Path, dims: usize, base_generation: u64) -> Result<Wal> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(&header_bytes(dims, base_generation))?;
        file.sync_data()?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            dims,
            base_generation,
            records: 0,
        })
    }

    /// Open (or create) the log at `path`, validating the header and every
    /// record. A torn or garbled tail is truncated — with a [`TornTail`]
    /// diagnostic, never a panic — so the log is clean for appends. A
    /// missing or zero-length file becomes a fresh log based at
    /// `base_if_fresh` (the checkpoint generation the caller recovered).
    pub fn open(path: &Path, dims: usize, base_if_fresh: u64) -> Result<WalOpen> {
        let mut file = match OpenOptions::new().read(true).write(true).open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(WalOpen {
                    wal: Wal::create(path, dims, base_if_fresh)?,
                    records: Vec::new(),
                    torn: None,
                });
            }
            Err(e) => return Err(e.into()),
        };
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.is_empty() {
            drop(file);
            return Ok(WalOpen {
                wal: Wal::create(path, dims, base_if_fresh)?,
                records: Vec::new(),
                torn: None,
            });
        }
        if bytes.len() < WAL_HEADER_LEN {
            // A crash while the header itself was being written: no record
            // can exist yet, so nothing durable is lost by starting over —
            // but only if the fragment is a prefix of the header we would
            // write, otherwise this is not our file.
            let expect = header_bytes(dims, base_if_fresh);
            if bytes == expect[..bytes.len()] {
                drop(file);
                return Ok(WalOpen {
                    wal: Wal::create(path, dims, base_if_fresh)?,
                    records: Vec::new(),
                    torn: None,
                });
            }
            return Err(corrupt(format!(
                "wal {}: {} bytes is shorter than the {WAL_HEADER_LEN}-byte header and not a \
                 torn header prefix",
                path.display(),
                bytes.len()
            )));
        }
        if bytes[..8] != WAL_MAGIC {
            return Err(corrupt(format!(
                "wal {}: bad magic (not a skycube wal)",
                path.display()
            )));
        }
        let version = read_u32(&bytes, 8);
        if version != WAL_VERSION {
            return Err(corrupt(format!(
                "wal {}: unsupported version {version} (this build reads {WAL_VERSION})",
                path.display()
            )));
        }
        if read_u32(&bytes, 12) != ENDIAN_PROBE {
            return Err(corrupt(format!(
                "wal {}: endianness mismatch — written on a machine with the other byte order",
                path.display()
            )));
        }
        let file_dims = read_u32(&bytes, 16) as usize;
        if file_dims != dims {
            return Err(corrupt(format!(
                "wal {}: logged mutations have {file_dims} dimensions, dataset has {dims}",
                path.display()
            )));
        }
        let base_generation = read_u64(&bytes, 24);
        let stored = read_u64(&bytes, 32);
        let actual = checksum(&bytes[..32]);
        if stored != actual {
            return Err(corrupt(format!(
                "wal {}: header checksum mismatch (stored {stored:#018x}, computed {actual:#018x})",
                path.display()
            )));
        }

        let (records, torn) = scan_records(&bytes, dims, base_generation);
        let good_end = records
            .iter()
            .map(record_len)
            .fold(WAL_HEADER_LEN as u64, |at, len| at + len);
        if torn.is_some() {
            file.set_len(good_end)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(good_end))?;
        let wal = Wal {
            file,
            path: path.to_path_buf(),
            dims,
            base_generation,
            records: records.len() as u64,
        };
        Ok(WalOpen { wal, records, torn })
    }

    /// The durable generation the log starts after.
    pub fn base_generation(&self) -> u64 {
        self.base_generation
    }

    /// Valid records currently in the log.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The stamp the next appended record will carry.
    pub fn next_generation(&self) -> u64 {
        self.base_generation + self.records + 1
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append + fsync an insert record; returns its generation stamp. The
    /// caller applies the mutation to the engine only after this returns.
    pub fn append_insert(&mut self, row: &[Value]) -> Result<u64> {
        if row.len() != self.dims {
            return Err(Error::RowLengthMismatch {
                row: 0,
                expected: self.dims,
                actual: row.len(),
            });
        }
        let payload: Vec<u64> = row.iter().map(|&v| v as u64).collect();
        self.append(KIND_INSERT, &payload)
    }

    /// Append + fsync a delete record; returns its generation stamp.
    pub fn append_delete(&mut self, id: ObjId) -> Result<u64> {
        self.append(KIND_DELETE, &[u64::from(id)])
    }

    fn append(&mut self, kind: u32, payload: &[u64]) -> Result<u64> {
        let generation = self.next_generation();
        let buf = encode_record(kind, generation, payload);
        self.file.write_all(&buf)?;
        self.file.sync_data()?;
        self.records += 1;
        Ok(generation)
    }

    /// fsync the log (drain hook; appends already fsync individually).
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Truncate the log to a fresh header based at `base_generation`
    /// (checkpoint commit). Atomic: a fresh file is written and fsync'd at
    /// a sibling tmp path, then renamed over the log — a crash at any
    /// point leaves either the old log (whose records replay idempotently
    /// past the checkpoint) or the new empty one.
    pub fn reset(&mut self, base_generation: u64) -> Result<()> {
        let tmp = sibling(&self.path, ".tmp");
        let mut fresh = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        fresh.write_all(&header_bytes(self.dims, base_generation))?;
        fresh.sync_data()?;
        std::fs::rename(&tmp, &self.path)?;
        sync_parent_dir(&self.path);
        self.file = fresh;
        self.base_generation = base_generation;
        self.records = 0;
        Ok(())
    }
}

/// Byte length of a record on disk.
fn record_len(r: &WalRecord) -> u64 {
    let words = match r {
        WalRecord::Insert { row, .. } => row.len(),
        WalRecord::Delete { .. } => 1,
    };
    (RECORD_HEADER_LEN + words * 8 + 8) as u64
}

/// Validate and decode records from `bytes` (past the header). Returns the
/// valid prefix and, if validation failed anywhere, the structured
/// diagnostic for the first bad record.
fn scan_records(bytes: &[u8], dims: usize, base: u64) -> (Vec<WalRecord>, Option<TornTail>) {
    let mut records = Vec::new();
    let mut at = WAL_HEADER_LEN;
    loop {
        if at == bytes.len() {
            return (records, None);
        }
        let index = records.len() as u64;
        let torn = |reason: String| TornTail {
            record: index,
            offset: at as u64,
            reason,
        };
        let rest = bytes.len() - at;
        if rest < RECORD_HEADER_LEN {
            return (
                records,
                Some(torn(format!(
                    "truncated record header ({rest} of {RECORD_HEADER_LEN} bytes)"
                ))),
            );
        }
        let kind = read_u32(bytes, at);
        let words = read_u32(bytes, at + 4) as usize;
        let generation = read_u64(bytes, at + 8);
        let expect_words = match kind {
            KIND_INSERT => dims,
            KIND_DELETE => 1,
            other => {
                return (records, Some(torn(format!("unknown record kind {other}"))));
            }
        };
        if words != expect_words {
            return (
                records,
                Some(torn(format!(
                    "kind {kind} carries {words} payload words, expected {expect_words}"
                ))),
            );
        }
        let body_len = RECORD_HEADER_LEN + words * 8;
        if rest < body_len + 8 {
            return (
                records,
                Some(torn(format!(
                    "truncated record body ({rest} of {} bytes)",
                    body_len + 8
                ))),
            );
        }
        let stored = read_u64(bytes, at + body_len);
        let actual = checksum(&bytes[at..at + body_len]);
        if stored != actual {
            return (
                records,
                Some(torn(format!(
                    "checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
                ))),
            );
        }
        let expect_gen = base + index + 1;
        if generation != expect_gen {
            return (
                records,
                Some(torn(format!(
                    "generation stamp {generation}, expected {expect_gen}"
                ))),
            );
        }
        let record = match kind {
            KIND_INSERT => WalRecord::Insert {
                generation,
                row: (0..dims)
                    .map(|i| read_u64(bytes, at + RECORD_HEADER_LEN + i * 8) as Value)
                    .collect(),
            },
            _ => {
                let id = read_u64(bytes, at + RECORD_HEADER_LEN);
                if id > u64::from(u32::MAX) {
                    return (
                        records,
                        Some(torn(format!("delete object id {id} exceeds u32"))),
                    );
                }
                WalRecord::Delete {
                    generation,
                    id: id as ObjId,
                }
            }
        };
        records.push(record);
        at += body_len + 8;
    }
}

/// `path` with `suffix` appended to its file name (keeps the directory).
fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(suffix);
    path.with_file_name(name)
}

/// Best-effort fsync of `path`'s parent directory so renames are durable.
fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        }) {
            let _ = dir.sync_all();
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

/// Manifest path for the checkpoint family rooted at `wal_path`.
pub fn meta_path(wal_path: &Path) -> PathBuf {
    sibling(wal_path, ".meta")
}

fn rows_path(wal_path: &Path, generation: u64) -> PathBuf {
    sibling(wal_path, &format!(".ckpt{generation}.rows"))
}

fn cube_path(wal_path: &Path, generation: u64) -> PathBuf {
    sibling(wal_path, &format!(".ckpt{generation}.cube"))
}

/// A loaded checkpoint: the rows and cube as of `generation`.
#[derive(Debug)]
pub struct CheckpointData {
    /// The dataset at the checkpoint generation.
    pub dataset: Dataset,
    /// The cube at the checkpoint generation (index included, zero-copy).
    pub cube: CompressedSkylineCube,
    /// The durable generation the checkpoint holds.
    pub generation: u64,
}

fn write_atomically(path: &Path, write: impl FnOnce(&Path) -> Result<()>) -> Result<()> {
    let tmp = sibling(path, ".tmp");
    write(&tmp)?;
    // Re-open to fsync what the writer produced before the rename commits.
    File::open(&tmp)?.sync_all()?;
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path);
    Ok(())
}

fn rows_bytes(ds: &Dataset, generation: u64) -> Vec<u8> {
    let count = ds.len() as u64;
    let mut head = [0u8; 40];
    head[0..8].copy_from_slice(&ROWS_MAGIC);
    head[8..12].copy_from_slice(&WAL_VERSION.to_ne_bytes());
    head[12..16].copy_from_slice(&ENDIAN_PROBE.to_ne_bytes());
    head[16..20].copy_from_slice(&(ds.dims() as u32).to_ne_bytes());
    head[24..32].copy_from_slice(&count.to_ne_bytes());
    head[32..40].copy_from_slice(&generation.to_ne_bytes());
    let mut out = Vec::with_capacity(48 + ds.len() * ds.dims() * 8 + 8);
    out.extend_from_slice(&head);
    out.extend_from_slice(&checksum(&head).to_ne_bytes());
    for o in 0..ds.len() {
        for &v in ds.row(o as ObjId) {
            out.extend_from_slice(&(v as u64).to_ne_bytes());
        }
    }
    let payload_sum = checksum(&out[48..]);
    out.extend_from_slice(&payload_sum.to_ne_bytes());
    out
}

fn parse_rows(bytes: &[u8], path: &Path) -> Result<(Dataset, u64)> {
    let name = path.display();
    if bytes.len() < 48 {
        return Err(corrupt(format!(
            "checkpoint rows {name}: truncated header ({} bytes)",
            bytes.len()
        )));
    }
    if bytes[..8] != ROWS_MAGIC {
        return Err(corrupt(format!("checkpoint rows {name}: bad magic")));
    }
    let version = read_u32(bytes, 8);
    if version != WAL_VERSION {
        return Err(corrupt(format!(
            "checkpoint rows {name}: unsupported version {version}"
        )));
    }
    if read_u32(bytes, 12) != ENDIAN_PROBE {
        return Err(corrupt(format!(
            "checkpoint rows {name}: endianness mismatch"
        )));
    }
    let stored = read_u64(bytes, 40);
    let actual = checksum(&bytes[..40]);
    if stored != actual {
        return Err(corrupt(format!(
            "checkpoint rows {name}: header checksum mismatch"
        )));
    }
    let dims = read_u32(bytes, 16) as usize;
    let count = read_u64(bytes, 24);
    let generation = read_u64(bytes, 32);
    if count > u64::from(u32::MAX) || dims == 0 {
        return Err(corrupt(format!(
            "checkpoint rows {name}: implausible header (dims={dims}, count={count})"
        )));
    }
    let count = count as usize;
    let payload_len = count * dims * 8;
    if bytes.len() != 48 + payload_len + 8 {
        return Err(corrupt(format!(
            "checkpoint rows {name}: {} bytes, layout needs {}",
            bytes.len(),
            48 + payload_len + 8
        )));
    }
    let stored = read_u64(bytes, 48 + payload_len);
    let actual = checksum(&bytes[48..48 + payload_len]);
    if stored != actual {
        return Err(corrupt(format!(
            "checkpoint rows {name}: payload checksum mismatch"
        )));
    }
    let rows: Vec<Vec<Value>> = (0..count)
        .map(|r| {
            (0..dims)
                .map(|c| read_u64(bytes, 48 + (r * dims + c) * 8) as Value)
                .collect()
        })
        .collect();
    Ok((Dataset::from_rows(dims, rows)?, generation))
}

/// Write a checkpoint of `ds`/`cube` at durable `generation`. The manifest
/// is committed last (tmp+rename), so a crash anywhere leaves the previous
/// checkpoint intact; stale generation-suffixed files from older
/// checkpoints are cleaned up after the commit.
pub fn write_checkpoint(
    wal_path: &Path,
    ds: &Dataset,
    cube: &CompressedSkylineCube,
    generation: u64,
) -> Result<()> {
    write_atomically(&rows_path(wal_path, generation), |tmp| {
        std::fs::write(tmp, rows_bytes(ds, generation))?;
        Ok(())
    })?;
    write_atomically(&cube_path(wal_path, generation), |tmp| {
        save_cube_binary(cube, tmp)
    })?;
    let mut meta = [0u8; 32];
    meta[0..8].copy_from_slice(&META_MAGIC);
    meta[8..12].copy_from_slice(&WAL_VERSION.to_ne_bytes());
    meta[12..16].copy_from_slice(&ENDIAN_PROBE.to_ne_bytes());
    meta[16..24].copy_from_slice(&generation.to_ne_bytes());
    let sum = checksum(&meta[..24]);
    meta[24..32].copy_from_slice(&sum.to_ne_bytes());
    write_atomically(&meta_path(wal_path), |tmp| {
        std::fs::write(tmp, meta)?;
        Ok(())
    })?;
    cleanup_stale_checkpoints(wal_path, generation);
    Ok(())
}

/// Remove generation-suffixed checkpoint files other than `keep`'s.
fn cleanup_stale_checkpoints(wal_path: &Path, keep: u64) {
    let (Some(dir), Some(name)) = (wal_path.parent(), wal_path.file_name()) else {
        return;
    };
    let dir = if dir.as_os_str().is_empty() {
        Path::new(".")
    } else {
        dir
    };
    let prefix = format!("{}.ckpt", name.to_string_lossy());
    let keep_prefix = format!("{}.ckpt{keep}.", name.to_string_lossy());
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let file = entry.file_name();
        let file = file.to_string_lossy();
        if file.starts_with(&prefix) && !file.starts_with(&keep_prefix) {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// Load the newest committed checkpoint for `wal_path`, if any. A missing
/// manifest means "no checkpoint" (`Ok(None)`); a manifest that names
/// files which fail validation is a structured [`Error::Corrupt`] — the
/// caller decides whether a full replay can still recover exactly.
pub fn read_checkpoint(wal_path: &Path, dims: usize) -> Result<Option<CheckpointData>> {
    let meta = meta_path(wal_path);
    let bytes = match std::fs::read(&meta) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let name = meta.display();
    if bytes.len() != 32 {
        return Err(corrupt(format!(
            "checkpoint manifest {name}: {} bytes, expected 32",
            bytes.len()
        )));
    }
    if bytes[..8] != META_MAGIC {
        return Err(corrupt(format!("checkpoint manifest {name}: bad magic")));
    }
    let version = read_u32(&bytes, 8);
    if version != WAL_VERSION {
        return Err(corrupt(format!(
            "checkpoint manifest {name}: unsupported version {version}"
        )));
    }
    if read_u32(&bytes, 12) != ENDIAN_PROBE {
        return Err(corrupt(format!(
            "checkpoint manifest {name}: endianness mismatch"
        )));
    }
    let stored = read_u64(&bytes, 24);
    let actual = checksum(&bytes[..24]);
    if stored != actual {
        return Err(corrupt(format!(
            "checkpoint manifest {name}: checksum mismatch"
        )));
    }
    let generation = read_u64(&bytes, 16);
    let rows = rows_path(wal_path, generation);
    let (dataset, rows_generation) = parse_rows(&std::fs::read(&rows)?, &rows)?;
    if rows_generation != generation {
        return Err(corrupt(format!(
            "checkpoint rows {}: stamped generation {rows_generation}, manifest names \
             {generation}",
            rows.display()
        )));
    }
    if dataset.dims() != dims {
        return Err(corrupt(format!(
            "checkpoint rows {}: {} dimensions, dataset has {dims}",
            rows.display(),
            dataset.dims()
        )));
    }
    let cube = load_cube(cube_path(wal_path, generation))?;
    if cube.dims() != dims || cube.num_objects() != dataset.len() {
        return Err(corrupt(format!(
            "checkpoint cube {}: shape {}d×{} objects does not match checkpoint rows \
             {}d×{}",
            cube_path(wal_path, generation).display(),
            cube.dims(),
            cube.num_objects(),
            dataset.dims(),
            dataset.len()
        )));
    }
    Ok(Some(CheckpointData {
        dataset,
        cube,
        generation,
    }))
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

/// What crash recovery produced: a warm engine positioned at the durable
/// generation, the log ready for appends, and the replay/torn diagnostics.
pub struct Recovery {
    /// The recovered engine: checkpoint (or base dataset) plus every
    /// replayed mutation, byte-identical in answers to a clean run.
    pub engine: StellarEngine,
    /// The log, truncated clean and positioned for append.
    pub wal: Wal,
    /// Durable generation at the engine's in-memory generation 0 (the
    /// checkpoint generation; 0 when recovery rebuilt from the dataset).
    pub base_generation: u64,
    /// Records replayed through the engine.
    pub replayed: u64,
    /// The torn-tail diagnostic, when the log had to be truncated.
    pub torn: Option<TornTail>,
    /// Whether a committed checkpoint seeded the engine.
    pub from_checkpoint: bool,
}

/// Recover a serving engine from `wal_path`: load the newest checkpoint
/// (falling back to `ds` when none is committed), open + validate the log,
/// and replay every record stamped past the checkpoint through the same
/// maintenance path the live daemon uses. The replayed engine answers
/// byte-identically to an uninterrupted run. Fails with a structured error
/// — never a panic — when exact recovery is impossible (e.g. the log was
/// truncated at a checkpoint that is now unreadable).
pub fn recover(
    wal_path: &Path,
    ds: &Dataset,
    runner: Stellar,
) -> std::result::Result<Recovery, ServeError> {
    let checkpoint =
        read_checkpoint(wal_path, ds.dims()).map_err(|e| ServeError::CorruptCube(e.to_string()))?;
    let (mut engine, base_generation, from_checkpoint) = match checkpoint {
        Some(c) => {
            let engine = StellarEngine::with_cube(&c.dataset, c.cube, runner)
                .map_err(|e| ServeError::CorruptCube(e.to_string()))?;
            (engine, c.generation, true)
        }
        None => (StellarEngine::with_runner(ds, runner), 0, false),
    };
    let WalOpen { wal, records, torn } = Wal::open(wal_path, ds.dims(), base_generation)
        .map_err(|e| ServeError::CorruptCube(e.to_string()))?;
    if wal.base_generation() > base_generation {
        return Err(ServeError::CorruptCube(format!(
            "wal {} starts after generation {} but the newest committed checkpoint holds \
             generation {base_generation}: the mutations between them are unrecoverable",
            wal_path.display(),
            wal.base_generation()
        )));
    }
    let mut replayed = 0u64;
    for record in &records {
        if record.generation() <= base_generation {
            continue; // already inside the checkpoint
        }
        let expected = base_generation + replayed + 1;
        if record.generation() != expected {
            return Err(ServeError::CorruptCube(format!(
                "wal {}: replay expected generation {expected}, found record stamped {}",
                wal_path.display(),
                record.generation()
            )));
        }
        match record {
            WalRecord::Insert { row, .. } => {
                engine.insert(row.clone()).map_err(|e| {
                    ServeError::CorruptCube(format!(
                        "wal {}: replaying insert at generation {expected}: {e}",
                        wal_path.display()
                    ))
                })?;
            }
            WalRecord::Delete { id, .. } => {
                engine.delete(*id).map_err(|e| {
                    ServeError::CorruptCube(format!(
                        "wal {}: replaying delete of object {id} at generation {expected}: {e}",
                        wal_path.display()
                    ))
                })?;
            }
        }
        replayed += 1;
    }
    Ok(Recovery {
        engine,
        wal,
        base_generation,
        replayed,
        torn,
        from_checkpoint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycube_types::running_example;

    fn dir() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "skycube-wal-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    /// A mixed mutation stream against the running example (4 dims).
    fn stream() -> Vec<WalRecord> {
        vec![
            WalRecord::Insert {
                generation: 1,
                row: vec![9, 0, 11, 9],
            },
            WalRecord::Insert {
                generation: 2,
                row: vec![1, 1, 1, 1],
            },
            WalRecord::Delete {
                generation: 3,
                id: 5,
            },
            WalRecord::Insert {
                generation: 4,
                row: vec![-3, 7, 0, 2],
            },
            WalRecord::Delete {
                generation: 5,
                id: 0,
            },
        ]
    }

    fn write_stream(path: &Path) -> Vec<WalRecord> {
        let mut wal = Wal::create(path, 4, 0).unwrap();
        let records = stream();
        for r in &records {
            let stamp = match r {
                WalRecord::Insert { row, .. } => wal.append_insert(row).unwrap(),
                WalRecord::Delete { id, .. } => wal.append_delete(*id).unwrap(),
            };
            assert_eq!(stamp, r.generation());
        }
        records
    }

    #[test]
    fn append_then_open_roundtrips_every_record() {
        let path = dir().join("roundtrip.wal");
        let records = write_stream(&path);
        let opened = Wal::open(&path, 4, 0).unwrap();
        assert_eq!(opened.records, records);
        assert!(opened.torn.is_none());
        assert_eq!(opened.wal.records(), 5);
        assert_eq!(opened.wal.next_generation(), 6);
    }

    #[test]
    fn open_creates_a_fresh_log_with_the_callers_base() {
        let path = dir().join("fresh.wal");
        let opened = Wal::open(&path, 3, 42).unwrap();
        assert_eq!(opened.wal.base_generation(), 42);
        assert_eq!(opened.wal.next_generation(), 43);
        assert!(opened.records.is_empty());
    }

    #[test]
    fn torn_tail_is_truncated_with_a_diagnostic_at_every_prefix() {
        let base = dir();
        let path = base.join("full.wal");
        let records = write_stream(&path);
        let full = std::fs::read(&path).unwrap();
        let mut offsets = vec![WAL_HEADER_LEN as u64];
        for r in &records {
            offsets.push(offsets.last().unwrap() + record_len(r));
        }
        for len in WAL_HEADER_LEN..full.len() {
            let p = base.join(format!("torn-{len}.wal"));
            std::fs::write(&p, &full[..len]).unwrap();
            let opened = Wal::open(&p, 4, 0).unwrap();
            // The valid prefix is exactly the records whose bytes are whole.
            let kept = offsets.iter().filter(|&&o| o <= len as u64).count() - 1;
            assert_eq!(opened.records, records[..kept], "prefix {len}");
            if (len as u64) == offsets[kept] {
                assert!(opened.torn.is_none(), "clean cut at {len} reported torn");
            } else {
                let torn = opened.torn.expect("torn tail not reported");
                assert_eq!(torn.record, kept as u64);
                assert_eq!(torn.offset, offsets[kept]);
                assert!(torn.reason.contains("truncated"), "{}", torn.reason);
            }
            // The truncated log accepts a fresh append where the tail was.
            let mut wal = opened.wal;
            assert_eq!(wal.append_insert(&[7, 7, 7, 7]).unwrap(), kept as u64 + 1);
            std::fs::remove_file(&p).unwrap();
        }
    }

    #[test]
    fn garbled_record_bytes_truncate_never_panic() {
        let base = dir();
        let path = base.join("flip.wal");
        let records = write_stream(&path);
        let full = std::fs::read(&path).unwrap();
        for bit in 0..8 {
            for at in WAL_HEADER_LEN..full.len() {
                let p = base.join("flipped.wal");
                let mut bytes = full.clone();
                bytes[at] ^= 1 << bit;
                std::fs::write(&p, &bytes).unwrap();
                let opened = Wal::open(&p, 4, 0).unwrap();
                let torn = opened.torn.expect("flip not detected");
                assert!(opened.records.len() < records.len());
                assert_eq!(opened.records, records[..opened.records.len()]);
                assert!((torn.offset as usize) <= at);
            }
        }
    }

    #[test]
    fn garbled_header_is_a_structured_error() {
        let path = dir().join("header.wal");
        write_stream(&path);
        let good = std::fs::read(&path).unwrap();
        for at in 0..WAL_HEADER_LEN {
            let mut bad = good.clone();
            bad[at] ^= 0x20;
            std::fs::write(&path, &bad).unwrap();
            match Wal::open(&path, 4, 0) {
                Err(Error::Corrupt { what, .. }) => {
                    assert!(what.contains("wal"), "{what}");
                }
                other => panic!("header byte {at}: expected Corrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn dims_mismatch_is_rejected() {
        let path = dir().join("dims.wal");
        write_stream(&path);
        match Wal::open(&path, 5, 0) {
            Err(Error::Corrupt { what, .. }) => assert!(what.contains("dimensions"), "{what}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn reset_truncates_to_a_new_base() {
        let path = dir().join("reset.wal");
        write_stream(&path);
        let mut opened = Wal::open(&path, 4, 0).unwrap();
        opened.wal.reset(5).unwrap();
        assert_eq!(opened.wal.records(), 0);
        assert_eq!(opened.wal.next_generation(), 6);
        assert_eq!(opened.wal.append_delete(2).unwrap(), 6);
        let reopened = Wal::open(&path, 4, 5).unwrap();
        assert_eq!(reopened.wal.base_generation(), 5);
        assert_eq!(
            reopened.records,
            vec![WalRecord::Delete {
                generation: 6,
                id: 2
            }]
        );
    }

    #[test]
    fn replayed_engine_matches_directly_mutated_engine() {
        let ds = running_example();
        let path = dir().join("replay.wal");
        let records = write_stream(&path);
        // Reference: apply the stream directly.
        let mut reference = StellarEngine::new(&ds);
        let mut wal = Wal::create(&path, ds.dims(), 0).unwrap();
        for r in &records {
            match r {
                WalRecord::Insert { row, .. } => {
                    wal.append_insert(row).unwrap();
                    reference.insert(row.clone()).unwrap();
                }
                WalRecord::Delete { id, .. } => {
                    wal.append_delete(*id).unwrap();
                    reference.delete(*id).unwrap();
                }
            }
        }
        drop(wal);
        let rec = recover(&path, &ds, Stellar::new()).unwrap();
        assert_eq!(rec.replayed, records.len() as u64);
        assert!(!rec.from_checkpoint);
        assert_eq!(rec.engine.generation(), reference.generation());
        for space in ds.full_space().subsets() {
            assert_eq!(
                rec.engine.cube().subspace_skyline(space),
                reference.cube().subspace_skyline(space),
                "subspace {space} diverged after replay"
            );
        }
    }

    #[test]
    fn checkpoint_roundtrip_and_stale_cleanup() {
        let ds = running_example();
        let path = dir().join("ckpt.wal");
        let mut engine = StellarEngine::new(&ds);
        engine.insert(vec![9, 0, 11, 9]).unwrap();
        let snapshot = engine.dataset();
        write_checkpoint(&path, &snapshot, engine.cube(), 1).unwrap();
        let c = read_checkpoint(&path, ds.dims())
            .unwrap()
            .expect("committed");
        assert_eq!(c.generation, 1);
        assert_eq!(c.dataset.len(), 6);
        engine.insert(vec![1, 1, 1, 1]).unwrap();
        let snapshot2 = engine.dataset();
        write_checkpoint(&path, &snapshot2, engine.cube(), 2).unwrap();
        assert!(!rows_path(&path, 1).exists(), "stale rows survived");
        assert!(!cube_path(&path, 1).exists(), "stale cube survived");
        let c = read_checkpoint(&path, ds.dims())
            .unwrap()
            .expect("committed");
        assert_eq!((c.generation, c.dataset.len()), (2, 7));
        for space in ds.full_space().subsets() {
            assert_eq!(
                c.cube.subspace_skyline(space),
                engine.cube().subspace_skyline(space)
            );
        }
    }

    #[test]
    fn recovery_from_checkpoint_plus_tail_is_exact() {
        let ds = running_example();
        let path = dir().join("ckpt-tail.wal");
        let mut reference = StellarEngine::new(&ds);
        let mut wal = Wal::create(&path, ds.dims(), 0).unwrap();
        // Two mutations, checkpoint, two more — then recover.
        for row in [vec![9, 0, 11, 9], vec![1, 1, 1, 1]] {
            wal.append_insert(&row).unwrap();
            reference.insert(row).unwrap();
        }
        let snapshot = reference.dataset();
        write_checkpoint(&path, &snapshot, reference.cube(), 2).unwrap();
        wal.reset(2).unwrap();
        wal.append_delete(0).unwrap();
        reference.delete(0).unwrap();
        wal.append_insert(&[-3, 7, 0, 2]).unwrap();
        reference.insert(vec![-3, 7, 0, 2]).unwrap();
        drop(wal);
        let rec = recover(&path, &ds, Stellar::new()).unwrap();
        assert!(rec.from_checkpoint);
        assert_eq!((rec.base_generation, rec.replayed), (2, 2));
        for space in ds.full_space().subsets() {
            assert_eq!(
                rec.engine.cube().subspace_skyline(space),
                reference.cube().subspace_skyline(space)
            );
        }
    }

    #[test]
    fn crash_between_manifest_commit_and_log_reset_replays_idempotently() {
        let ds = running_example();
        let path = dir().join("ckpt-race.wal");
        let mut reference = StellarEngine::new(&ds);
        let mut wal = Wal::create(&path, ds.dims(), 0).unwrap();
        for row in [vec![9, 0, 11, 9], vec![1, 1, 1, 1]] {
            wal.append_insert(&row).unwrap();
            reference.insert(row).unwrap();
        }
        let snapshot = reference.dataset();
        // Manifest committed at generation 2 — but the crash happens before
        // wal.reset(2): the log still holds records stamped 1 and 2.
        write_checkpoint(&path, &snapshot, reference.cube(), 2).unwrap();
        drop(wal);
        let rec = recover(&path, &ds, Stellar::new()).unwrap();
        assert!(rec.from_checkpoint);
        assert_eq!((rec.base_generation, rec.replayed), (2, 0));
        for space in ds.full_space().subsets() {
            assert_eq!(
                rec.engine.cube().subspace_skyline(space),
                reference.cube().subspace_skyline(space)
            );
        }
    }

    #[test]
    fn truncated_log_without_its_checkpoint_is_unrecoverable_not_silent() {
        let ds = running_example();
        let path = dir().join("lost-ckpt.wal");
        let mut wal = Wal::create(&path, ds.dims(), 7).unwrap();
        wal.append_insert(&[1, 2, 3, 4]).unwrap();
        drop(wal);
        // No manifest on disk: the seven mutations before the log's base
        // are gone, and recovery must say so rather than serve a wrong cube.
        let err = match recover(&path, &ds, Stellar::new()) {
            Err(e) => e,
            Ok(_) => panic!("recovery with a lost checkpoint must fail"),
        };
        assert_eq!(err.kind(), "corrupt-cube");
        assert!(err.to_string().contains("unrecoverable"), "{err}");
    }

    #[test]
    fn corrupt_manifest_is_a_structured_error() {
        let ds = running_example();
        let path = dir().join("bad-meta.wal");
        let engine = StellarEngine::new(&ds);
        let snapshot = engine.dataset();
        write_checkpoint(&path, &snapshot, engine.cube(), 0).unwrap();
        let meta = meta_path(&path);
        let mut bytes = std::fs::read(&meta).unwrap();
        bytes[20] ^= 0xff;
        std::fs::write(&meta, &bytes).unwrap();
        match read_checkpoint(&path, ds.dims()) {
            Err(Error::Corrupt { what, .. }) => assert!(what.contains("manifest"), "{what}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_rows_file_is_a_structured_error() {
        let ds = running_example();
        let path = dir().join("bad-rows.wal");
        let engine = StellarEngine::new(&ds);
        let snapshot = engine.dataset();
        write_checkpoint(&path, &snapshot, engine.cube(), 0).unwrap();
        let rows = rows_path(&path, 0);
        let mut bytes = std::fs::read(&rows).unwrap();
        let last = bytes.len() - 9;
        bytes[last] ^= 0x01;
        std::fs::write(&rows, &bytes).unwrap();
        match read_checkpoint(&path, ds.dims()) {
            Err(Error::Corrupt { what, .. }) => assert!(what.contains("rows"), "{what}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }
}
