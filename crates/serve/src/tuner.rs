//! Online merge-route autotuning: the [`RouteTuner`].
//!
//! The [`crate::IndexedCubeSource`] already times every skyline query and
//! knows which merge route answered it and what the merged run shape looked
//! like ([`skycube_stellar::IndexProbe`]). The tuner turns that exhaust
//! into a feedback loop over the [`RouteTable`] thresholds:
//!
//! 1. **Observe.** Every answered query lands in a *shape bucket* — the
//!    (log₂ runs, log₂ elements) cell its probe falls in — under the route
//!    that answered it, accumulating per-bucket per-route ns/query.
//! 2. **Explore.** Every [`EXPLORE_PERIOD`]th eligible query (≥ 3 runs, so
//!    the short path is not in play) is re-answered through one rotating
//!    alternative route via the index's forced-route entry point. The
//!    duplicate answer is compared byte-for-byte with the served one —
//!    exploration doubles as a *continuous ablation* that the decision
//!    table only ever changes latency, never answers — and its timing
//!    fills in the bucket cells the production table would never visit.
//! 3. **Recalibrate.** Every [`RECAL_PERIOD`] observations, candidate
//!    tables (the incumbent with each threshold halved or doubled, plus
//!    the shipping default) are scored by replaying every bucket's mean
//!    shape through the candidate and charging the bucket's observed
//!    ns/query for the route the candidate picks. A candidate is promoted
//!    only when its projected cost beats the incumbent by more than
//!    [`PROMOTE_MARGIN`] — observed ns/query at the run shapes actually
//!    served must beat the incumbent, the ROADMAP's promotion rule.
//!
//! The tuner is deterministic (period counters, no clocks or RNG in the
//! policy itself), shared across threads behind one mutex, and advisory:
//! it never touches an index itself — the owning source applies promoted
//! tables via [`skycube_stellar::CubeIndex::set_route_table`].

use crate::source::hist_bucket;
use skycube_stellar::{IndexProbe, MergeRoute, RouteTable};
use std::collections::HashMap;
use std::sync::Mutex;

/// One exploration probe per this many eligible observations.
pub const EXPLORE_PERIOD: u64 = 16;
/// Consider recalibrating after every this many observations.
pub const RECAL_PERIOD: u64 = 256;
/// A candidate table must project at least this fractional improvement
/// over the incumbent to be promoted.
pub const PROMOTE_MARGIN: f64 = 0.05;

/// Per-route accumulator inside one shape bucket.
#[derive(Debug, Default, Clone, Copy)]
struct RouteCell {
    queries: u64,
    nanos: u64,
}

impl RouteCell {
    fn mean_ns(&self) -> Option<f64> {
        (self.queries > 0).then(|| self.nanos as f64 / self.queries as f64)
    }
}

/// One (log₂ runs, log₂ elements) shape bucket: per-route timings plus the
/// shape sums needed to replay the route decision on the bucket's mean
/// shape.
#[derive(Debug, Default, Clone)]
struct ShapeBucket {
    count: u64,
    sum_runs: u64,
    sum_total: u64,
    sum_max_len: u64,
    routes: [RouteCell; 5],
}

impl ShapeBucket {
    /// Mean ns/query across every route observed in this bucket.
    fn overall_mean_ns(&self) -> f64 {
        let q: u64 = self.routes.iter().map(|r| r.queries).sum();
        let ns: u64 = self.routes.iter().map(|r| r.nanos).sum();
        if q == 0 {
            0.0
        } else {
            ns as f64 / q as f64
        }
    }

    /// Projected ns/query if this bucket were served by `route`: the
    /// route's observed mean, or the bucket's overall mean when the route
    /// has never been tried here (neutral — unknown routes neither win nor
    /// lose a recalibration).
    fn projected_ns(&self, route: MergeRoute) -> f64 {
        self.routes[route.index()]
            .mean_ns()
            .unwrap_or_else(|| self.overall_mean_ns())
    }
}

#[derive(Debug, Default)]
struct TunerInner {
    buckets: HashMap<(usize, usize), ShapeBucket>,
    observations: u64,
    eligible: u64,
    explorations: u64,
    ablation_checks: u64,
    ablation_mismatches: u64,
    recalibrations: u64,
    promotions: u64,
    /// Rotates over the non-short routes so exploration covers all of them.
    explore_cursor: usize,
    incumbent: RouteTable,
    /// Observations when the incumbent last changed (or the tuner started);
    /// recalibration fires on period boundaries past this.
    last_recal: u64,
}

/// Counters and the live decision table, for the metrics endpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunerSnapshot {
    /// Production queries observed.
    pub observations: u64,
    /// Forced-route exploration probes executed.
    pub explorations: u64,
    /// Exploration answers compared against the served answer.
    pub ablation_checks: u64,
    /// Comparisons that differed — any nonzero value is a routing bug.
    pub ablation_mismatches: u64,
    /// Recalibration evaluations run.
    pub recalibrations: u64,
    /// Tables promoted over an incumbent.
    pub promotions: u64,
    /// The incumbent decision table.
    pub table: RouteTable,
    /// Distinct run shapes observed.
    pub shapes: usize,
}

/// The online route autotuner. See the module docs for the loop.
#[derive(Debug, Default)]
pub struct RouteTuner {
    inner: Mutex<TunerInner>,
}

/// Non-short routes, in exploration rotation order.
const EXPLORABLE: [MergeRoute; 4] = [
    MergeRoute::Heap,
    MergeRoute::Gallop,
    MergeRoute::Flat,
    MergeRoute::Winner,
];

impl RouteTuner {
    /// A tuner whose incumbent is [`RouteTable::DEFAULT`].
    pub fn new() -> Self {
        RouteTuner::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TunerInner> {
        // Counter state stays valid across a holder's panic.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Record one production query: its probe (route + shape) and wall
    /// nanoseconds. Returns the alternative route to explore, if this
    /// query drew an exploration probe.
    pub fn observe(&self, probe: &IndexProbe, nanos: u64) -> Option<MergeRoute> {
        let mut inner = self.lock();
        inner.observations += 1;
        record(&mut inner, probe, nanos);
        if probe.runs_merged <= 2 {
            return None; // the short path has no alternatives
        }
        inner.eligible += 1;
        if !inner.eligible.is_multiple_of(EXPLORE_PERIOD) {
            return None;
        }
        // Rotate to the next explorable route that differs from the one
        // production just used.
        for _ in 0..EXPLORABLE.len() {
            let candidate = EXPLORABLE[inner.explore_cursor % EXPLORABLE.len()];
            inner.explore_cursor += 1;
            if candidate != probe.route {
                inner.explorations += 1;
                return Some(candidate);
            }
        }
        None
    }

    /// Record a forced-route exploration probe's timing, and whether its
    /// answer matched the served answer (`matched == false` is counted as
    /// an ablation mismatch — a routing correctness bug).
    pub fn observe_forced(&self, probe: &IndexProbe, nanos: u64, matched: bool) {
        let mut inner = self.lock();
        record(&mut inner, probe, nanos);
        inner.ablation_checks += 1;
        if !matched {
            inner.ablation_mismatches += 1;
        }
    }

    /// Consider recalibrating the decision table. Returns a newly promoted
    /// table when one beats the incumbent by more than [`PROMOTE_MARGIN`];
    /// the caller installs it on its index.
    pub fn maybe_recalibrate(&self) -> Option<RouteTable> {
        let mut inner = self.lock();
        if inner.observations < inner.last_recal + RECAL_PERIOD {
            return None;
        }
        inner.last_recal = inner.observations;
        inner.recalibrations += 1;
        let incumbent = inner.incumbent;
        let incumbent_cost = projected_cost(&inner.buckets, &incumbent)?;
        let mut best = incumbent;
        let mut best_cost = incumbent_cost;
        for candidate in candidates(&incumbent) {
            if candidate == incumbent {
                continue;
            }
            if let Some(cost) = projected_cost(&inner.buckets, &candidate) {
                if cost < best_cost {
                    best = candidate;
                    best_cost = cost;
                }
            }
        }
        if best != incumbent && best_cost < incumbent_cost * (1.0 - PROMOTE_MARGIN) {
            inner.incumbent = best;
            inner.promotions += 1;
            Some(best)
        } else {
            None
        }
    }

    /// Current counters and incumbent table.
    pub fn snapshot(&self) -> TunerSnapshot {
        let inner = self.lock();
        TunerSnapshot {
            observations: inner.observations,
            explorations: inner.explorations,
            ablation_checks: inner.ablation_checks,
            ablation_mismatches: inner.ablation_mismatches,
            recalibrations: inner.recalibrations,
            promotions: inner.promotions,
            table: inner.incumbent,
            shapes: inner.buckets.len(),
        }
    }
}

fn record(inner: &mut TunerInner, probe: &IndexProbe, nanos: u64) {
    let key = (
        hist_bucket(probe.runs_merged),
        hist_bucket(probe.elements_merged),
    );
    let bucket = inner.buckets.entry(key).or_default();
    bucket.count += 1;
    bucket.sum_runs += probe.runs_merged as u64;
    bucket.sum_total += probe.elements_merged as u64;
    bucket.sum_max_len += probe.max_run_len as u64;
    let cell = &mut bucket.routes[probe.route.index()];
    cell.queries += 1;
    cell.nanos += nanos;
}

/// Σ over buckets of (bucket traffic × projected ns/query under `table` at
/// the bucket's mean shape). `None` until at least one multi-run bucket has
/// traffic.
fn projected_cost(
    buckets: &HashMap<(usize, usize), ShapeBucket>,
    table: &RouteTable,
) -> Option<f64> {
    let mut cost = 0.0;
    let mut any = false;
    for b in buckets.values() {
        if b.count == 0 {
            continue;
        }
        let runs = (b.sum_runs / b.count) as usize;
        if runs <= 2 {
            continue; // the table is never consulted for these
        }
        let total = (b.sum_total / b.count) as usize;
        let max_len = ((b.sum_max_len / b.count) as usize).min(total);
        let route = table.choose(runs, total.max(runs), max_len.max(1));
        cost += b.count as f64 * b.projected_ns(route);
        any = true;
    }
    any.then_some(cost)
}

/// The incumbent plus its one-threshold halved/doubled neighbours and the
/// shipping default — a deterministic hill-climb neighbourhood.
fn candidates(incumbent: &RouteTable) -> Vec<RouteTable> {
    let mut out = vec![*incumbent, RouteTable::DEFAULT];
    let steps: [fn(u32) -> u32; 2] = [|v| (v / 2).max(1), |v| v.saturating_mul(2)];
    for step in steps {
        for field in 0..4 {
            let mut t = *incumbent;
            match field {
                0 => t.gallop_min_giant = step(t.gallop_min_giant),
                1 => t.gallop_skew = step(t.gallop_skew),
                2 => t.flat_max_runs = step(t.flat_max_runs).max(3),
                _ => t.heap_short_avg = step(t.heap_short_avg),
            }
            out.push(t);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(route: MergeRoute, runs: usize, total: usize, max_len: usize) -> IndexProbe {
        IndexProbe {
            route,
            runs_merged: runs,
            elements_merged: total,
            max_run_len: max_len,
            ..IndexProbe::default()
        }
    }

    #[test]
    fn exploration_fires_periodically_with_a_rotating_alternative() {
        let tuner = RouteTuner::new();
        let mut explored = Vec::new();
        for _ in 0..(4 * EXPLORE_PERIOD) {
            if let Some(r) = tuner.observe(&probe(MergeRoute::Flat, 5, 100, 30), 1_000) {
                explored.push(r);
            }
        }
        assert_eq!(explored.len(), 4);
        assert!(explored.iter().all(|&r| r != MergeRoute::Flat));
        assert!(explored.iter().all(|&r| r != MergeRoute::Short));
        // The rotation visits distinct alternatives, not one favourite.
        let distinct: std::collections::HashSet<_> = explored.iter().collect();
        assert!(distinct.len() >= 3, "{explored:?}");
        // Short-path queries are never explored.
        let tuner = RouteTuner::new();
        for _ in 0..(4 * EXPLORE_PERIOD) {
            assert_eq!(
                tuner.observe(&probe(MergeRoute::Short, 2, 10, 8), 100),
                None
            );
        }
        assert_eq!(tuner.snapshot().explorations, 0);
    }

    #[test]
    fn ablation_mismatches_are_counted() {
        let tuner = RouteTuner::new();
        tuner.observe_forced(&probe(MergeRoute::Heap, 5, 100, 30), 500, true);
        tuner.observe_forced(&probe(MergeRoute::Winner, 5, 100, 30), 500, false);
        let snap = tuner.snapshot();
        assert_eq!(snap.ablation_checks, 2);
        assert_eq!(snap.ablation_mismatches, 1);
    }

    #[test]
    fn recalibration_promotes_a_faster_table() {
        let tuner = RouteTuner::new();
        // Shape: 5 runs, ~100 elements, balanced (max 30) → DEFAULT routes
        // it to Flat. Feed observations where Flat is consistently 10×
        // slower than Heap at the same shape.
        for i in 0..RECAL_PERIOD {
            let route = if i % 4 == 0 {
                MergeRoute::Heap
            } else {
                MergeRoute::Flat
            };
            let nanos = if route == MergeRoute::Heap {
                1_000
            } else {
                10_000
            };
            tuner.observe(&probe(route, 5, 100, 30), nanos);
        }
        let promoted = tuner.maybe_recalibrate();
        let snap = tuner.snapshot();
        assert_eq!(snap.recalibrations, 1);
        let table = promoted.expect("a 10× win must clear the 5% margin");
        assert_eq!(snap.promotions, 1);
        assert_eq!(snap.table, table);
        // The promoted table actually reroutes the observed shape off Flat.
        assert_ne!(table.choose(5, 100, 30), MergeRoute::Flat);
        // Immediately re-asking does nothing until another period elapses.
        assert_eq!(tuner.maybe_recalibrate(), None);
    }

    #[test]
    fn recalibration_keeps_the_incumbent_when_it_wins() {
        let tuner = RouteTuner::new();
        for i in 0..RECAL_PERIOD {
            let route = if i % 4 == 0 {
                MergeRoute::Heap
            } else {
                MergeRoute::Flat
            };
            // Flat (the default choice at this shape) is the fastest.
            let nanos = if route == MergeRoute::Flat {
                500
            } else {
                5_000
            };
            tuner.observe(&probe(route, 5, 100, 30), nanos);
        }
        assert_eq!(tuner.maybe_recalibrate(), None);
        let snap = tuner.snapshot();
        assert_eq!(snap.recalibrations, 1);
        assert_eq!(snap.promotions, 0);
        assert_eq!(snap.table, RouteTable::DEFAULT);
    }

    #[test]
    fn no_recalibration_before_the_period() {
        let tuner = RouteTuner::new();
        for _ in 0..(RECAL_PERIOD - 1) {
            tuner.observe(&probe(MergeRoute::Flat, 5, 100, 30), 1_000);
        }
        assert_eq!(tuner.maybe_recalibrate(), None);
        assert_eq!(tuner.snapshot().recalibrations, 0);
    }
}
