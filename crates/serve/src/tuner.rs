//! Online merge-route autotuning: the [`RouteTuner`].
//!
//! The [`crate::IndexedCubeSource`] already times every skyline query and
//! knows which merge route answered it and what the merged run shape looked
//! like ([`skycube_stellar::IndexProbe`]). The tuner turns that exhaust
//! into a feedback loop over the [`RouteTable`] thresholds:
//!
//! 1. **Observe.** Every answered query lands in a *shape bucket* — the
//!    (log₂ runs, log₂ elements) cell its probe falls in — under the route
//!    that answered it, accumulating per-bucket per-route ns/query.
//! 2. **Explore.** Every [`EXPLORE_PERIOD`]th eligible query (≥ 3 runs, so
//!    the short path is not in play) is re-answered through one rotating
//!    alternative route via the index's forced-route entry point. The
//!    duplicate answer is compared byte-for-byte with the served one —
//!    exploration doubles as a *continuous ablation* that the decision
//!    table only ever changes latency, never answers — and its timing
//!    fills in the bucket cells the production table would never visit.
//! 3. **Recalibrate.** Every [`RECAL_PERIOD`] observations, candidate
//!    tables (the incumbent with each threshold halved or doubled, plus
//!    the shipping default) are scored by replaying every bucket's mean
//!    shape through the candidate and charging the bucket's observed
//!    ns/query for the route the candidate picks. A candidate is promoted
//!    only when its projected cost beats the incumbent by more than
//!    [`PROMOTE_MARGIN`] — observed ns/query at the run shapes actually
//!    served must beat the incumbent, the ROADMAP's promotion rule.
//!
//! The tuner is deterministic (period counters, no clocks or RNG in the
//! policy itself), shared across threads behind one mutex, and advisory:
//! it never touches an index itself — the owning source applies promoted
//! tables via [`skycube_stellar::CubeIndex::set_route_table`].

use crate::source::hist_bucket;
use skycube_stellar::{IndexProbe, MergeRoute, RouteTable};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Mutex;

/// Sidecar file magic for a persisted [`RouteTable`] (same magic+version+
/// checksum conventions as the binary cube and the WAL).
pub const SIDECAR_MAGIC: [u8; 8] = *b"SKYTUN01";

/// Sidecar format version.
pub const SIDECAR_VERSION: u32 = 1;

const SIDECAR_ENDIAN_PROBE: u32 = 0x0102_0304;
const SIDECAR_LEN: usize = 40;

/// Persist a learned route table to `path` (tmp+rename, checksummed) so
/// the next daemon boot starts from it instead of re-learning from the
/// shipping default.
pub fn save_route_table(path: &Path, table: &RouteTable) -> skycube_types::Result<()> {
    let mut bytes = [0u8; SIDECAR_LEN];
    bytes[0..8].copy_from_slice(&SIDECAR_MAGIC);
    bytes[8..12].copy_from_slice(&SIDECAR_VERSION.to_ne_bytes());
    bytes[12..16].copy_from_slice(&SIDECAR_ENDIAN_PROBE.to_ne_bytes());
    bytes[16..20].copy_from_slice(&table.gallop_min_giant.to_ne_bytes());
    bytes[20..24].copy_from_slice(&table.gallop_skew.to_ne_bytes());
    bytes[24..28].copy_from_slice(&table.flat_max_runs.to_ne_bytes());
    bytes[28..32].copy_from_slice(&table.heap_short_avg.to_ne_bytes());
    let sum = skycube_types::checksum(&bytes[..32]);
    bytes[32..40].copy_from_slice(&sum.to_ne_bytes());
    let mut tmp = path.file_name().unwrap_or_default().to_os_string();
    tmp.push(".tmp");
    let tmp = path.with_file_name(tmp);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Load a route table persisted by [`save_route_table`]. Any defect —
/// wrong length, magic, version, endianness, or checksum — is a structured
/// [`skycube_types::Error::Corrupt`]; the caller falls back to the default
/// table rather than serving from garbage thresholds.
pub fn load_route_table(path: &Path) -> skycube_types::Result<RouteTable> {
    let corrupt = |what: String| skycube_types::Error::Corrupt { line: 0, what };
    let name = path.display();
    let bytes = std::fs::read(path)?;
    if bytes.len() != SIDECAR_LEN {
        return Err(corrupt(format!(
            "tuner sidecar {name}: {} bytes, expected {SIDECAR_LEN}",
            bytes.len()
        )));
    }
    if bytes[..8] != SIDECAR_MAGIC {
        return Err(corrupt(format!("tuner sidecar {name}: bad magic")));
    }
    let word = |at: usize| u32::from_ne_bytes(bytes[at..at + 4].try_into().unwrap());
    if word(8) != SIDECAR_VERSION {
        return Err(corrupt(format!(
            "tuner sidecar {name}: unsupported version {}",
            word(8)
        )));
    }
    if word(12) != SIDECAR_ENDIAN_PROBE {
        return Err(corrupt(format!(
            "tuner sidecar {name}: endianness mismatch"
        )));
    }
    let stored = u64::from_ne_bytes(bytes[32..40].try_into().unwrap());
    let actual = skycube_types::checksum(&bytes[..32]);
    if stored != actual {
        return Err(corrupt(format!("tuner sidecar {name}: checksum mismatch")));
    }
    Ok(RouteTable {
        gallop_min_giant: word(16),
        gallop_skew: word(20),
        flat_max_runs: word(24),
        heap_short_avg: word(28),
    })
}

/// One exploration probe per this many eligible observations.
pub const EXPLORE_PERIOD: u64 = 16;
/// Consider recalibrating after every this many observations.
pub const RECAL_PERIOD: u64 = 256;
/// A candidate table must project at least this fractional improvement
/// over the incumbent to be promoted.
pub const PROMOTE_MARGIN: f64 = 0.05;

/// Per-route accumulator inside one shape bucket.
#[derive(Debug, Default, Clone, Copy)]
struct RouteCell {
    queries: u64,
    nanos: u64,
}

impl RouteCell {
    fn mean_ns(&self) -> Option<f64> {
        (self.queries > 0).then(|| self.nanos as f64 / self.queries as f64)
    }
}

/// One (log₂ runs, log₂ elements) shape bucket: per-route timings plus the
/// shape sums needed to replay the route decision on the bucket's mean
/// shape.
#[derive(Debug, Default, Clone)]
struct ShapeBucket {
    count: u64,
    sum_runs: u64,
    sum_total: u64,
    sum_max_len: u64,
    routes: [RouteCell; 5],
}

impl ShapeBucket {
    /// Mean ns/query across every route observed in this bucket.
    fn overall_mean_ns(&self) -> f64 {
        let q: u64 = self.routes.iter().map(|r| r.queries).sum();
        let ns: u64 = self.routes.iter().map(|r| r.nanos).sum();
        if q == 0 {
            0.0
        } else {
            ns as f64 / q as f64
        }
    }

    /// Projected ns/query if this bucket were served by `route`: the
    /// route's observed mean, or the bucket's overall mean when the route
    /// has never been tried here (neutral — unknown routes neither win nor
    /// lose a recalibration).
    fn projected_ns(&self, route: MergeRoute) -> f64 {
        self.routes[route.index()]
            .mean_ns()
            .unwrap_or_else(|| self.overall_mean_ns())
    }
}

#[derive(Debug, Default)]
struct TunerInner {
    buckets: HashMap<(usize, usize), ShapeBucket>,
    observations: u64,
    eligible: u64,
    explorations: u64,
    ablation_checks: u64,
    ablation_mismatches: u64,
    recalibrations: u64,
    promotions: u64,
    /// Rotates over the non-short routes so exploration covers all of them.
    explore_cursor: usize,
    incumbent: RouteTable,
    /// Observations when the incumbent last changed (or the tuner started);
    /// recalibration fires on period boundaries past this.
    last_recal: u64,
}

/// Counters and the live decision table, for the metrics endpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunerSnapshot {
    /// Production queries observed.
    pub observations: u64,
    /// Forced-route exploration probes executed.
    pub explorations: u64,
    /// Exploration answers compared against the served answer.
    pub ablation_checks: u64,
    /// Comparisons that differed — any nonzero value is a routing bug.
    pub ablation_mismatches: u64,
    /// Recalibration evaluations run.
    pub recalibrations: u64,
    /// Tables promoted over an incumbent.
    pub promotions: u64,
    /// The incumbent decision table.
    pub table: RouteTable,
    /// Distinct run shapes observed.
    pub shapes: usize,
}

/// The online route autotuner. See the module docs for the loop.
#[derive(Debug, Default)]
pub struct RouteTuner {
    inner: Mutex<TunerInner>,
}

/// Non-short routes, in exploration rotation order.
const EXPLORABLE: [MergeRoute; 4] = [
    MergeRoute::Heap,
    MergeRoute::Gallop,
    MergeRoute::Flat,
    MergeRoute::Winner,
];

impl RouteTuner {
    /// A tuner whose incumbent is [`RouteTable::DEFAULT`].
    pub fn new() -> Self {
        RouteTuner::default()
    }

    /// A tuner whose incumbent is a previously learned `table` (the
    /// daemon's sidecar restore path): bucket statistics start empty, but
    /// the learned thresholds survive the restart.
    pub fn with_table(table: RouteTable) -> Self {
        let tuner = RouteTuner::default();
        tuner.lock().incumbent = table;
        tuner
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TunerInner> {
        // Counter state stays valid across a holder's panic.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Record one production query: its probe (route + shape) and wall
    /// nanoseconds. Returns the alternative route to explore, if this
    /// query drew an exploration probe.
    pub fn observe(&self, probe: &IndexProbe, nanos: u64) -> Option<MergeRoute> {
        let mut inner = self.lock();
        inner.observations += 1;
        record(&mut inner, probe, nanos);
        if probe.runs_merged <= 2 {
            return None; // the short path has no alternatives
        }
        inner.eligible += 1;
        if !inner.eligible.is_multiple_of(EXPLORE_PERIOD) {
            return None;
        }
        // Rotate to the next explorable route that differs from the one
        // production just used.
        for _ in 0..EXPLORABLE.len() {
            let candidate = EXPLORABLE[inner.explore_cursor % EXPLORABLE.len()];
            inner.explore_cursor += 1;
            if candidate != probe.route {
                inner.explorations += 1;
                return Some(candidate);
            }
        }
        None
    }

    /// Record a forced-route exploration probe's timing, and whether its
    /// answer matched the served answer (`matched == false` is counted as
    /// an ablation mismatch — a routing correctness bug).
    pub fn observe_forced(&self, probe: &IndexProbe, nanos: u64, matched: bool) {
        let mut inner = self.lock();
        record(&mut inner, probe, nanos);
        inner.ablation_checks += 1;
        if !matched {
            inner.ablation_mismatches += 1;
        }
    }

    /// Consider recalibrating the decision table. Returns a newly promoted
    /// table when one beats the incumbent by more than [`PROMOTE_MARGIN`];
    /// the caller installs it on its index.
    pub fn maybe_recalibrate(&self) -> Option<RouteTable> {
        let mut inner = self.lock();
        if inner.observations < inner.last_recal + RECAL_PERIOD {
            return None;
        }
        inner.last_recal = inner.observations;
        inner.recalibrations += 1;
        let incumbent = inner.incumbent;
        let incumbent_cost = projected_cost(&inner.buckets, &incumbent)?;
        let mut best = incumbent;
        let mut best_cost = incumbent_cost;
        for candidate in candidates(&incumbent) {
            if candidate == incumbent {
                continue;
            }
            if let Some(cost) = projected_cost(&inner.buckets, &candidate) {
                if cost < best_cost {
                    best = candidate;
                    best_cost = cost;
                }
            }
        }
        if best != incumbent && best_cost < incumbent_cost * (1.0 - PROMOTE_MARGIN) {
            inner.incumbent = best;
            inner.promotions += 1;
            Some(best)
        } else {
            None
        }
    }

    /// Current counters and incumbent table.
    pub fn snapshot(&self) -> TunerSnapshot {
        let inner = self.lock();
        TunerSnapshot {
            observations: inner.observations,
            explorations: inner.explorations,
            ablation_checks: inner.ablation_checks,
            ablation_mismatches: inner.ablation_mismatches,
            recalibrations: inner.recalibrations,
            promotions: inner.promotions,
            table: inner.incumbent,
            shapes: inner.buckets.len(),
        }
    }
}

fn record(inner: &mut TunerInner, probe: &IndexProbe, nanos: u64) {
    let key = (
        hist_bucket(probe.runs_merged),
        hist_bucket(probe.elements_merged),
    );
    let bucket = inner.buckets.entry(key).or_default();
    bucket.count += 1;
    bucket.sum_runs += probe.runs_merged as u64;
    bucket.sum_total += probe.elements_merged as u64;
    bucket.sum_max_len += probe.max_run_len as u64;
    let cell = &mut bucket.routes[probe.route.index()];
    cell.queries += 1;
    cell.nanos += nanos;
}

/// Σ over buckets of (bucket traffic × projected ns/query under `table` at
/// the bucket's mean shape). `None` until at least one multi-run bucket has
/// traffic.
fn projected_cost(
    buckets: &HashMap<(usize, usize), ShapeBucket>,
    table: &RouteTable,
) -> Option<f64> {
    let mut cost = 0.0;
    let mut any = false;
    for b in buckets.values() {
        if b.count == 0 {
            continue;
        }
        let runs = (b.sum_runs / b.count) as usize;
        if runs <= 2 {
            continue; // the table is never consulted for these
        }
        let total = (b.sum_total / b.count) as usize;
        let max_len = ((b.sum_max_len / b.count) as usize).min(total);
        let route = table.choose(runs, total.max(runs), max_len.max(1));
        cost += b.count as f64 * b.projected_ns(route);
        any = true;
    }
    any.then_some(cost)
}

/// The incumbent plus its one-threshold halved/doubled neighbours and the
/// shipping default — a deterministic hill-climb neighbourhood.
fn candidates(incumbent: &RouteTable) -> Vec<RouteTable> {
    let mut out = vec![*incumbent, RouteTable::DEFAULT];
    let steps: [fn(u32) -> u32; 2] = [|v| (v / 2).max(1), |v| v.saturating_mul(2)];
    for step in steps {
        for field in 0..4 {
            let mut t = *incumbent;
            match field {
                0 => t.gallop_min_giant = step(t.gallop_min_giant),
                1 => t.gallop_skew = step(t.gallop_skew),
                2 => t.flat_max_runs = step(t.flat_max_runs).max(3),
                _ => t.heap_short_avg = step(t.heap_short_avg),
            }
            out.push(t);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(route: MergeRoute, runs: usize, total: usize, max_len: usize) -> IndexProbe {
        IndexProbe {
            route,
            runs_merged: runs,
            elements_merged: total,
            max_run_len: max_len,
            ..IndexProbe::default()
        }
    }

    #[test]
    fn exploration_fires_periodically_with_a_rotating_alternative() {
        let tuner = RouteTuner::new();
        let mut explored = Vec::new();
        for _ in 0..(4 * EXPLORE_PERIOD) {
            if let Some(r) = tuner.observe(&probe(MergeRoute::Flat, 5, 100, 30), 1_000) {
                explored.push(r);
            }
        }
        assert_eq!(explored.len(), 4);
        assert!(explored.iter().all(|&r| r != MergeRoute::Flat));
        assert!(explored.iter().all(|&r| r != MergeRoute::Short));
        // The rotation visits distinct alternatives, not one favourite.
        let distinct: std::collections::HashSet<_> = explored.iter().collect();
        assert!(distinct.len() >= 3, "{explored:?}");
        // Short-path queries are never explored.
        let tuner = RouteTuner::new();
        for _ in 0..(4 * EXPLORE_PERIOD) {
            assert_eq!(
                tuner.observe(&probe(MergeRoute::Short, 2, 10, 8), 100),
                None
            );
        }
        assert_eq!(tuner.snapshot().explorations, 0);
    }

    #[test]
    fn ablation_mismatches_are_counted() {
        let tuner = RouteTuner::new();
        tuner.observe_forced(&probe(MergeRoute::Heap, 5, 100, 30), 500, true);
        tuner.observe_forced(&probe(MergeRoute::Winner, 5, 100, 30), 500, false);
        let snap = tuner.snapshot();
        assert_eq!(snap.ablation_checks, 2);
        assert_eq!(snap.ablation_mismatches, 1);
    }

    #[test]
    fn recalibration_promotes_a_faster_table() {
        let tuner = RouteTuner::new();
        // Shape: 5 runs, ~100 elements, balanced (max 30) → DEFAULT routes
        // it to Flat. Feed observations where Flat is consistently 10×
        // slower than Heap at the same shape.
        for i in 0..RECAL_PERIOD {
            let route = if i % 4 == 0 {
                MergeRoute::Heap
            } else {
                MergeRoute::Flat
            };
            let nanos = if route == MergeRoute::Heap {
                1_000
            } else {
                10_000
            };
            tuner.observe(&probe(route, 5, 100, 30), nanos);
        }
        let promoted = tuner.maybe_recalibrate();
        let snap = tuner.snapshot();
        assert_eq!(snap.recalibrations, 1);
        let table = promoted.expect("a 10× win must clear the 5% margin");
        assert_eq!(snap.promotions, 1);
        assert_eq!(snap.table, table);
        // The promoted table actually reroutes the observed shape off Flat.
        assert_ne!(table.choose(5, 100, 30), MergeRoute::Flat);
        // Immediately re-asking does nothing until another period elapses.
        assert_eq!(tuner.maybe_recalibrate(), None);
    }

    #[test]
    fn recalibration_keeps_the_incumbent_when_it_wins() {
        let tuner = RouteTuner::new();
        for i in 0..RECAL_PERIOD {
            let route = if i % 4 == 0 {
                MergeRoute::Heap
            } else {
                MergeRoute::Flat
            };
            // Flat (the default choice at this shape) is the fastest.
            let nanos = if route == MergeRoute::Flat {
                500
            } else {
                5_000
            };
            tuner.observe(&probe(route, 5, 100, 30), nanos);
        }
        assert_eq!(tuner.maybe_recalibrate(), None);
        let snap = tuner.snapshot();
        assert_eq!(snap.recalibrations, 1);
        assert_eq!(snap.promotions, 0);
        assert_eq!(snap.table, RouteTable::DEFAULT);
    }

    #[test]
    fn with_table_restores_the_incumbent() {
        let learned = RouteTable {
            flat_max_runs: 99,
            ..RouteTable::DEFAULT
        };
        let tuner = RouteTuner::with_table(learned);
        assert_eq!(tuner.snapshot().table, learned);
        assert_eq!(tuner.snapshot().observations, 0);
    }

    #[test]
    fn sidecar_roundtrips_and_rejects_corruption() {
        let dir = std::env::temp_dir().join(format!("skycube-tuner-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("route.tuner");
        let learned = RouteTable {
            gallop_min_giant: 1024,
            gallop_skew: 7,
            flat_max_runs: 11,
            heap_short_avg: 3,
        };
        save_route_table(&path, &learned).unwrap();
        assert_eq!(load_route_table(&path).unwrap(), learned);
        // Every single-byte corruption is caught as a structured error.
        let good = std::fs::read(&path).unwrap();
        for at in 0..good.len() {
            let mut bad = good.clone();
            bad[at] ^= 0x11;
            std::fs::write(&path, &bad).unwrap();
            match load_route_table(&path) {
                Err(skycube_types::Error::Corrupt { what, .. }) => {
                    assert!(what.contains("tuner sidecar"), "{what}");
                }
                other => panic!("byte {at}: expected Corrupt, got {other:?}"),
            }
        }
        // Truncation is caught too.
        std::fs::write(&path, &good[..good.len() - 1]).unwrap();
        assert!(load_route_table(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn no_recalibration_before_the_period() {
        let tuner = RouteTuner::new();
        for _ in 0..(RECAL_PERIOD - 1) {
            tuner.observe(&probe(MergeRoute::Flat, 5, 100, 30), 1_000);
        }
        assert_eq!(tuner.maybe_recalibrate(), None);
        assert_eq!(tuner.snapshot().recalibrations, 0);
    }
}
