//! **Serving-grade query layer** over the workspace's answer engines.
//!
//! The paper's pitch is that the compressed cube makes subspace-skyline
//! queries cheap; this crate is where that pitch meets query traffic. It
//! unifies the four ways the workspace can answer the paper's query
//! families behind one [`SkylineSource`] trait:
//!
//! - the **indexed Stellar cube** ([`IndexedCubeSource`], backed by
//!   [`skycube_stellar::CubeIndex`]) — the serving path;
//! - the **scan-path Stellar cube** ([`ScanCubeSource`]) — the reference
//!   implementation the index is property-tested against;
//! - the materialized **SkyCube** of Yuan et al. ([`SkyCubeSource`]);
//! - the **SUBSKY** sorted index ([`SubskySource`]);
//! - the **SUBSKY** multi-anchor index ([`AnchoredSubskySource`]);
//! - **direct computation** from the dataset ([`DirectSource`]).
//!
//! On top of the trait sit an LRU subspace→skyline cache
//! ([`CachedSource`]) and a batched executor ([`run_batch`]) that fans a
//! parsed workload ([`parse_workload`]) out over `crates/parallel` and
//! reports per-source [`QueryStats`].
//!
//! ```
//! use skycube_serve::{parse_workload, run_batch, Answer, IndexedCubeSource};
//! use skycube_stellar::compute_cube;
//! use skycube_types::running_example;
//! use skycube_parallel::Parallelism;
//!
//! let ds = running_example();
//! let cube = compute_cube(&ds);
//! let source = IndexedCubeSource::new(&cube);
//! let queries = parse_workload("skyline BD\ncount 4\n").unwrap();
//! let outcome = run_batch(&source, &queries, Parallelism::sequential());
//! assert_eq!(outcome.answers[0], Ok(Answer::Skyline(vec![2, 4])));
//! assert_eq!(outcome.answers[1], Ok(Answer::Count(10)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod cache;
pub mod daemon;
mod error;
mod fallback;
#[cfg(feature = "faults")]
pub mod faults;
mod pool;
mod shard;
mod source;
pub mod tuner;
pub mod wal;
mod workload;

pub use batch::{
    format_answer, run_batch, run_batch_with, Answer, BatchOptions, BatchOutcome, QueryStats,
};
pub use cache::{CacheStats, CachedSource, GateOutcome, GenerationGate, SubspaceCache};
pub use daemon::{Daemon, DaemonConfig, DaemonMetrics};
pub use error::ServeError;
pub use fallback::FallbackSource;
pub use pool::{PoolConfig, PoolStream};
pub use shard::{ShardPlan, ShardedCube, ShardedSource};
pub use source::{
    AnchoredSubskySource, DirectSource, IndexStats, IndexedCubeSource, RouteStats, ScanCubeSource,
    SkyCubeSource, SkylineSource, SubskySource,
};
pub use tuner::{load_route_table, save_route_table, RouteTuner, TunerSnapshot};
pub use wal::{recover, CheckpointData, Recovery, TornTail, Wal, WalOpen, WalRecord};
pub use workload::{parse_query_line, parse_workload, Query};
