//! The daemon's bounded worker pool: fixed workers, a bounded accept
//! queue, and shed-don't-queue on overflow.
//!
//! PR 9's listener spawned one thread per connection — under an overload
//! burst that is unbounded thread creation and unbounded queueing, the two
//! failure modes admission control exists to prevent. Here accept loops
//! push connections into a bounded queue ([`WorkerPool`]) drained by a
//! fixed set of workers; when the queue is full the connection is *shed*
//! (a `ResourceExhausted`-formatted reply line, then close) through the
//! same taxonomy the per-wave admission check uses, so an overload burst
//! degrades into explicit refusals instead of latency collapse or OOM.
//!
//! [`PoolStream`] unifies the Unix-socket and TCP transports behind one
//! `Read + Write` type with per-connection send/recv deadlines — both
//! listeners speak the identical line protocol.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Sizing and deadlines for the daemon's connection pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Fixed number of worker threads draining the accept queue.
    pub workers: usize,
    /// Accepted-but-unserved connections the queue holds before shedding.
    pub backlog: usize,
    /// Per-connection send/recv deadline: a peer that stalls a read or
    /// write mid-exchange longer than this is reaped.
    pub io_timeout: Duration,
    /// A connection idle (no pending bytes, nothing in flight) longer than
    /// this is reaped so slow or abandoned clients cannot pin workers.
    pub idle_timeout: Duration,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: 4,
            backlog: 64,
            io_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(60),
        }
    }
}

/// One accepted connection, Unix-socket or TCP, behind a single
/// `Read + Write` type with settable deadlines.
#[derive(Debug)]
pub enum PoolStream {
    /// A connection accepted on the Unix socket listener.
    Unix(UnixStream),
    /// A connection accepted on the TCP listener.
    Tcp(TcpStream),
}

impl PoolStream {
    /// Arm the recv deadline: a blocking read past `timeout` returns
    /// `WouldBlock`/`TimedOut` instead of stalling the worker forever.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            PoolStream::Unix(s) => s.set_read_timeout(timeout),
            PoolStream::Tcp(s) => s.set_read_timeout(timeout),
        }
    }

    /// Arm the send deadline.
    pub fn set_write_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            PoolStream::Unix(s) => s.set_write_timeout(timeout),
            PoolStream::Tcp(s) => s.set_write_timeout(timeout),
        }
    }
}

impl Read for PoolStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            PoolStream::Unix(s) => s.read(buf),
            PoolStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for PoolStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            PoolStream::Unix(s) => s.write(buf),
            PoolStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            PoolStream::Unix(s) => s.flush(),
            PoolStream::Tcp(s) => s.flush(),
        }
    }
}

/// The bounded accept queue between listener threads and workers. The
/// queue mutex recovers from poisoning the same way the daemon's stats
/// mutexes do: the state is a plain deque of owned streams, coherent
/// whether or not a holder panicked.
#[derive(Debug)]
pub(crate) struct WorkerPool {
    queue: Mutex<VecDeque<PoolStream>>,
    ready: Condvar,
    backlog: usize,
    depth: AtomicU64,
}

impl WorkerPool {
    pub(crate) fn new(backlog: usize) -> Self {
        WorkerPool {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            backlog: backlog.max(1),
            depth: AtomicU64::new(0),
        }
    }

    /// Accepted-but-unserved connections currently queued.
    pub(crate) fn depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }

    /// Enqueue an accepted connection; hands the stream back (for the
    /// shed reply) when the backlog is full.
    pub(crate) fn push(&self, stream: PoolStream) -> Result<(), PoolStream> {
        let mut q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        if q.len() >= self.backlog {
            return Err(stream);
        }
        q.push_back(stream);
        self.depth.store(q.len() as u64, Ordering::Relaxed);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeue the next connection, waiting up to `tick`; `None` on
    /// timeout so workers can check the shutdown flag.
    pub(crate) fn pop(&self, tick: Duration) -> Option<PoolStream> {
        let mut q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        if q.is_empty() {
            let (guard, _timeout) = self
                .ready
                .wait_timeout(q, tick)
                .unwrap_or_else(PoisonError::into_inner);
            q = guard;
        }
        let stream = q.pop_front();
        self.depth.store(q.len() as u64, Ordering::Relaxed);
        stream
    }

    /// Take every queued-but-unserved connection (drain on shutdown).
    pub(crate) fn drain(&self) -> Vec<PoolStream> {
        let mut q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        let rest: Vec<PoolStream> = q.drain(..).collect();
        self.depth.store(0, Ordering::Relaxed);
        rest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> PoolStream {
        let (a, _b) = UnixStream::pair().unwrap();
        // Leak the peer so the stream stays open for the test's lifetime.
        std::mem::forget(_b);
        PoolStream::Unix(a)
    }

    #[test]
    fn backlog_bounds_the_queue_and_hands_overflow_back() {
        let pool = WorkerPool::new(2);
        assert!(pool.push(pair()).is_ok());
        assert!(pool.push(pair()).is_ok());
        assert_eq!(pool.depth(), 2);
        let overflow = pool.push(pair());
        assert!(overflow.is_err(), "third push must shed");
        assert_eq!(pool.depth(), 2);
        assert!(pool.pop(Duration::from_millis(1)).is_some());
        assert_eq!(pool.depth(), 1);
        assert!(pool.push(pair()).is_ok(), "freed slot admits again");
    }

    #[test]
    fn pop_times_out_on_an_empty_queue() {
        let pool = WorkerPool::new(4);
        let t = std::time::Instant::now();
        assert!(pool.pop(Duration::from_millis(10)).is_none());
        assert!(t.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn drain_takes_everything_queued() {
        let pool = WorkerPool::new(4);
        pool.push(pair()).unwrap();
        pool.push(pair()).unwrap();
        assert_eq!(pool.drain().len(), 2);
        assert_eq!(pool.depth(), 0);
        assert!(pool.pop(Duration::from_millis(1)).is_none());
    }
}
