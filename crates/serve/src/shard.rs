//! The sharding layer: partition the dataset into K contiguous shards,
//! build one [`StellarEngine`] per shard, and answer queries by merging the
//! per-shard subspace skylines.
//!
//! Correctness of merge-at-query rests on the skyline union invariant
//! `skyline(A ∪ B) = skyline(skyline(A) ∪ skyline(B))`: an object dominated
//! within its shard is dominated globally, so the union of per-shard
//! subspace skylines is a superset of the global skyline in every subspace,
//! and one skyline pass over that (small) candidate union recovers the
//! exact answer. The same invariant applied per subspace makes the
//! per-shard [`SubspaceCache`]s safe: each caches *shard-local* skylines,
//! which shard-local maintenance keeps valid without touching the other
//! K−1 shards.
//!
//! Id mapping is positional and contiguous: shard `k` owns the global ids
//! `[offsets[k], offsets[k+1])`, global id = `offsets[shard] + local id`.
//! Inserts route to the last shard (the only routing that preserves
//! contiguity under the append-at-end id model of
//! [`StellarEngine::insert`]), and the resulting [`MaintenanceDelta`] is
//! stamped with the shard id so serving layers can tell which cache to
//! reconcile.

use crate::cache::{CacheStats, GenerationGate, SubspaceCache};
use crate::error::ServeError;
use crate::fallback::FallbackSource;
use crate::source::{
    check_object, check_space, lock_recover, rank_frequencies, IndexStats, IndexedCubeSource,
    ScanCubeSource, SkylineSource,
};
use skycube_parallel::{par_map_indexed, Parallelism};
use skycube_skyline::Algorithm;
use skycube_stellar::{MaintenanceDelta, MaintenanceStats, Stellar, StellarEngine};
use skycube_types::{Dataset, DimMask, DominanceKernel, ObjId, Value};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Deterministic contiguous-range partitioning of `n` objects into K
/// shards, with the stable global↔(shard, local) id mapping every sharded
/// component shares.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    /// `offsets[k]..offsets[k + 1]` is shard `k`'s global id range.
    offsets: Vec<usize>,
}

impl ShardPlan {
    /// Split `num_objects` ids into `shards` near-equal contiguous ranges
    /// (the first `num_objects % shards` shards hold one extra object;
    /// shards may be empty when there are fewer objects than shards).
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn contiguous(num_objects: usize, shards: usize) -> Self {
        assert!(shards >= 1, "a shard plan needs at least one shard");
        let base = num_objects / shards;
        let extra = num_objects % shards;
        let mut offsets = Vec::with_capacity(shards + 1);
        let mut at = 0usize;
        offsets.push(0);
        for k in 0..shards {
            at += base + usize::from(k < extra);
            offsets.push(at);
        }
        ShardPlan { offsets }
    }

    /// A plan with explicitly sized shards (`sizes[k]` objects in shard
    /// `k`), for builds that stream rows per shard.
    ///
    /// # Panics
    /// Panics if `sizes` is empty.
    pub fn from_sizes(sizes: &[usize]) -> Self {
        assert!(!sizes.is_empty(), "a shard plan needs at least one shard");
        let mut offsets = Vec::with_capacity(sizes.len() + 1);
        let mut at = 0usize;
        offsets.push(0);
        for &s in sizes {
            at += s;
            offsets.push(at);
        }
        ShardPlan { offsets }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of objects across all shards.
    pub fn num_objects(&self) -> usize {
        *self.offsets.last().expect("offsets never empty")
    }

    /// Shard `k`'s global id range.
    pub fn shard_range(&self, k: usize) -> Range<usize> {
        self.offsets[k]..self.offsets[k + 1]
    }

    /// The shard owning global id `global`.
    ///
    /// # Panics
    /// Panics if `global` is out of range.
    pub fn shard_of(&self, global: ObjId) -> usize {
        let g = global as usize;
        assert!(g < self.num_objects(), "global id {global} out of range");
        // The last offset ≤ g starts the owning shard (empty shards have
        // zero-width ranges and can never own an id).
        self.offsets.partition_point(|&off| off <= g) - 1
    }

    /// Map a global id to its `(shard, local id)` pair.
    pub fn to_local(&self, global: ObjId) -> (usize, ObjId) {
        let k = self.shard_of(global);
        (k, global - self.offsets[k] as ObjId)
    }

    /// Map a `(shard, local id)` pair back to the global id.
    pub fn to_global(&self, shard: usize, local: ObjId) -> ObjId {
        (self.offsets[shard] + local as usize) as ObjId
    }

    /// Record one append to the last shard (the insert routing rule).
    fn note_append(&mut self) {
        *self.offsets.last_mut().expect("offsets never empty") += 1;
    }

    /// Hash partitioning — **not implemented yet**; always returns
    /// [`ServeError::Unsupported`] explaining why.
    ///
    /// Every sharded component maps global↔local ids *arithmetically*
    /// (`global = shard offset + local`), which requires each shard to own
    /// one contiguous id range; that same constraint is why inserts route
    /// to the **last** shard today (only an append at the tail keeps every
    /// other shard's range untouched). A hash plan needs a per-object
    /// id-translation table (and per-shard append cursors) before it can
    /// exist; until then this constructor is the diagnostic users of
    /// `--shards K` hit instead of silently skewed inserts.
    pub fn hash(num_objects: usize, shards: usize) -> Result<Self, ServeError> {
        Err(ServeError::Unsupported(format!(
            "hash partitioning of {num_objects} objects into {shards} shards is not \
             implemented: shards must own contiguous global-id ranges (ids map as \
             `global = shard offset + local`), so inserts currently route to the last \
             shard to keep every other range stable; use ShardPlan::contiguous, and \
             expect insert-heavy streams to grow the last shard"
        )))
    }
}

/// One shard's engine plus its serving-side cache state.
struct Shard {
    engine: StellarEngine,
    cache: SubspaceCache,
    gate: GenerationGate,
}

/// K per-shard [`StellarEngine`]s behind one [`ShardPlan`], with a
/// per-shard [`SubspaceCache`] + [`GenerationGate`] pair. Build fans the
/// per-shard pipeline over the `crates/parallel` dispenser; queries go
/// through [`ShardedCube::source`]. Inserts route to exactly one shard and
/// reuse the engine's delta patching there — the other K−1 shards'
/// indexes, memos, caches, and generations are untouched.
pub struct ShardedCube {
    plan: ShardPlan,
    dims: usize,
    shards: Vec<Shard>,
    last_delta: Option<MaintenanceDelta>,
}

impl ShardedCube {
    /// Partition `ds` into `shards` contiguous ranges and build one engine
    /// per shard, fanned over `par`.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn build(ds: &Dataset, shards: usize, par: Parallelism) -> Self {
        Self::build_with(ds, shards, par, Stellar::new())
    }

    /// [`Self::build`] with a configured per-shard runner.
    pub fn build_with(ds: &Dataset, shards: usize, par: Parallelism, runner: Stellar) -> Self {
        let plan = ShardPlan::contiguous(ds.len(), shards);
        let dims = ds.dims();
        let engines = par_map_indexed(par, shards, |k| {
            let rows: Vec<Vec<Value>> = plan
                .shard_range(k)
                .map(|o| ds.row(o as ObjId).to_vec())
                .collect();
            let sub = Dataset::from_rows(dims, rows).expect("shard rows stay well formed");
            StellarEngine::with_runner(&sub, runner)
        });
        Self::assemble(plan, dims, engines)
    }

    /// Build with per-shard datasets produced on the worker that builds the
    /// shard (`make(k)` must return `sizes[k]` rows of `dims` dimensions) —
    /// the streaming entry point that lets a 10M-object build generate each
    /// shard's rows from a chunked generator instead of materializing the
    /// global dataset.
    ///
    /// # Panics
    /// Panics if `sizes` is empty or `make(k)` disagrees with `sizes[k]` or
    /// `dims`.
    pub fn build_streamed<F>(
        dims: usize,
        sizes: &[usize],
        par: Parallelism,
        runner: Stellar,
        make: F,
    ) -> Self
    where
        F: Fn(usize) -> Dataset + Sync,
    {
        let plan = ShardPlan::from_sizes(sizes);
        let engines = par_map_indexed(par, sizes.len(), |k| {
            let sub = make(k);
            assert_eq!(sub.len(), sizes[k], "shard {k} row count mismatch");
            assert_eq!(sub.dims(), dims, "shard {k} dimensionality mismatch");
            StellarEngine::with_runner(&sub, runner)
        });
        Self::assemble(plan, dims, engines)
    }

    /// Reopen a sharded deployment from already-materialized per-shard
    /// cubes (e.g. loaded from `OUT.shard0..K-1` files) over the full
    /// dataset, without recomputing any shard: the shard sizes come from
    /// the cubes themselves ([`ShardPlan::from_sizes`]), each shard's
    /// engine adopts its cube via [`StellarEngine::with_cube`], and cubes
    /// loaded from the binary format keep serving through their zero-copy
    /// index. Fails with a structured error when the cubes do not tile `ds`
    /// (size or dimensionality mismatch).
    ///
    /// # Panics
    /// Panics if `cubes` is empty.
    pub fn from_cubes(
        ds: &Dataset,
        cubes: Vec<skycube_stellar::CompressedSkylineCube>,
        runner: Stellar,
    ) -> skycube_types::Result<Self> {
        assert!(!cubes.is_empty(), "a sharded cube needs at least one shard");
        let sizes: Vec<usize> = cubes.iter().map(|c| c.num_objects()).collect();
        let plan = ShardPlan::from_sizes(&sizes);
        if plan.num_objects() != ds.len() {
            return Err(skycube_types::Error::Corrupt {
                line: 0,
                what: format!(
                    "shard cubes cover {} objects, data has {}",
                    plan.num_objects(),
                    ds.len()
                ),
            });
        }
        let dims = ds.dims();
        let mut engines = Vec::with_capacity(cubes.len());
        for (k, cube) in cubes.into_iter().enumerate() {
            let rows: Vec<Vec<Value>> = plan
                .shard_range(k)
                .map(|o| ds.row(o as ObjId).to_vec())
                .collect();
            let sub = Dataset::from_rows(dims, rows)?;
            engines.push(StellarEngine::with_cube(&sub, cube, runner)?);
        }
        Ok(Self::assemble(plan, dims, engines))
    }

    fn assemble(plan: ShardPlan, dims: usize, engines: Vec<StellarEngine>) -> Self {
        let capacity = (1usize << dims.min(10)) - 1;
        let shards = engines
            .into_iter()
            .map(|engine| {
                let gate = GenerationGate::new(engine.generation());
                Shard {
                    engine,
                    cache: SubspaceCache::new(capacity),
                    gate,
                }
            })
            .collect();
        ShardedCube {
            plan,
            dims,
            shards,
            last_delta: None,
        }
    }

    /// The id-mapping plan.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total objects across all shards.
    pub fn num_objects(&self) -> usize {
        self.plan.num_objects()
    }

    /// Dimensionality of the full space.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Shard `k`'s engine (bench and test access).
    pub fn engine(&self, k: usize) -> &StellarEngine {
        &self.shards[k].engine
    }

    /// Shard `k`'s current generation — untouched shards keep theirs across
    /// mutations routed elsewhere.
    pub fn shard_generation(&self, k: usize) -> u64 {
        self.shards[k].engine.generation()
    }

    /// Shard `k`'s cache counters.
    pub fn shard_cache_stats(&self, k: usize) -> CacheStats {
        self.shards[k].cache.stats()
    }

    /// Maintenance counters aggregated across shards.
    pub fn maintenance_stats(&self) -> MaintenanceStats {
        let mut total = MaintenanceStats::default();
        for s in &self.shards {
            let m = s.engine.maintenance_stats();
            total.fast_inserts += m.fast_inserts;
            total.full_inserts += m.full_inserts;
            total.fast_deletes += m.fast_deletes;
            total.full_deletes += m.full_deletes;
            total.spliced += m.spliced;
        }
        total
    }

    /// The latest mutation's delta, stamped with the shard it landed on.
    pub fn last_delta(&self) -> Option<&MaintenanceDelta> {
        self.last_delta.as_ref()
    }

    /// Insert one object and refresh exactly one shard. Returns the new
    /// object's *global* id.
    ///
    /// The insert routes to the last shard — the only target that keeps the
    /// contiguous id mapping stable, since [`StellarEngine::insert`]
    /// appends at the end of the shard's local id space and the global id
    /// comes out as the previous total object count. The routed shard's
    /// cache is reconciled through its [`GenerationGate`] (patched when the
    /// engine's delta is selective); every other shard keeps its engine,
    /// index, memo, cache, and generation untouched.
    pub fn insert(&mut self, row: Vec<Value>) -> skycube_types::Result<ObjId> {
        let k = self.shards.len() - 1;
        let shard = &mut self.shards[k];
        let local = shard.engine.insert(row)?;
        self.plan.note_append();
        let delta = shard.engine.last_delta().cloned().map(|d| d.with_shard(k));
        shard
            .gate
            .sync(shard.engine.generation(), delta.as_ref(), &shard.cache);
        self.last_delta = delta;
        Ok(self.plan.to_global(k, local))
    }

    /// A merge-at-query source over this cube's shards, serving each shard
    /// through its [`skycube_stellar::CubeIndex`] with a per-shard
    /// indexed → scan degradation ladder (one sick shard demotes, the
    /// batch survives).
    pub fn source(&self) -> ShardedSource<'_> {
        ShardedSource::over(self, true)
    }

    /// A merge-at-query source whose per-shard answers come from the scan
    /// path (no index build) — the sharded reference implementation.
    pub fn scan_source(&self) -> ShardedSource<'_> {
        ShardedSource::over(self, false)
    }
}

/// Per-shard serving state of one [`ShardedSource`].
struct ShardServe<'a> {
    /// The indexed path; `None` in scan mode.
    indexed: Option<IndexedCubeSource<'a>>,
    scan: ScanCubeSource<'a>,
    demotions: AtomicU64,
}

/// Reusable per-query merge buffer (pooled, [`IndexedCubeSource`]-style).
#[derive(Default)]
struct MergeScratch {
    globals: Vec<ObjId>,
}

/// A [`SkylineSource`] that answers `skyline A` by merging the K per-shard
/// subspace skylines of a [`ShardedCube`]: collect each shard's (cached)
/// local skyline, lift local ids to global ids, and run one skyline pass
/// over the candidate union with the configured algorithm and dominance
/// kernel. `member` takes a shard-local fast path before the global check;
/// `count`/`top` aggregate across shards. Exact by the union invariant
/// (see the module docs).
pub struct ShardedSource<'a> {
    cube: &'a ShardedCube,
    serves: Vec<ShardServe<'a>>,
    indexed: bool,
    algorithm: Algorithm,
    kernel: DominanceKernel,
    scratch_pool: Mutex<Vec<MergeScratch>>,
}

impl<'a> ShardedSource<'a> {
    fn over(cube: &'a ShardedCube, indexed: bool) -> Self {
        let serves = cube
            .shards
            .iter()
            .map(|s| ShardServe {
                indexed: indexed.then(|| IndexedCubeSource::new(s.engine.cube())),
                scan: ScanCubeSource::new(s.engine.cube()),
                demotions: AtomicU64::new(0),
            })
            .collect();
        ShardedSource {
            cube,
            serves,
            indexed,
            algorithm: Algorithm::default(),
            kernel: DominanceKernel::default(),
            scratch_pool: Mutex::new(Vec::new()),
        }
    }

    /// Choose the dominance kernel for the cross-shard candidate merge.
    pub fn with_kernel(mut self, kernel: DominanceKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Choose the skyline algorithm for the cross-shard candidate merge.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Shard `k`'s skyline of `space` in *local* ids, through the shard's
    /// cache and (in indexed mode) its indexed → scan fallback ladder.
    fn shard_skyline(
        &self,
        k: usize,
        space: DimMask,
        deadline: Option<Instant>,
    ) -> Result<Vec<ObjId>, ServeError> {
        let shard = &self.cube.shards[k];
        if let Some(sky) = shard.cache.get(space) {
            return Ok(sky);
        }
        let serve = &self.serves[k];
        let sky = match &serve.indexed {
            Some(ix) => {
                let ladder = FallbackSource::new(ix).then(&serve.scan);
                let out = ladder.subspace_skyline_within(space, deadline)?;
                let demoted = ladder.demotions();
                if demoted > 0 {
                    serve.demotions.fetch_add(demoted, Ordering::Relaxed);
                }
                out
            }
            None => serve.scan.subspace_skyline_within(space, deadline)?,
        };
        shard.cache.put(space, sky.clone());
        Ok(sky)
    }

    /// The merged (global) skyline of `space`: per-shard skylines lifted to
    /// global ids, then one skyline pass over the candidate union.
    fn merged(&self, space: DimMask, deadline: Option<Instant>) -> Result<Vec<ObjId>, ServeError> {
        check_space(space, self.cube.dims)?;
        let mut scratch = lock_recover(&self.scratch_pool).pop().unwrap_or_default();
        scratch.globals.clear();
        let dims = self.cube.dims;
        let mut values: Vec<Value> = Vec::new();
        for k in 0..self.cube.shards.len() {
            let local = self.shard_skyline(k, space, deadline)?;
            let engine = &self.cube.shards[k].engine;
            scratch.globals.reserve(local.len());
            values.reserve(local.len() * dims);
            for &l in &local {
                scratch.globals.push(self.cube.plan.to_global(k, l));
                values.extend_from_slice(engine.row(l));
            }
        }
        // Candidates are already in ascending global order (shards ascend,
        // ranges are contiguous, per-shard skylines ascend), so mapping the
        // winners' candidate indices back preserves the canonical order.
        let out = if scratch.globals.is_empty() {
            Vec::new()
        } else {
            let cand = Dataset::from_flat(dims, values)
                .map_err(|e| ServeError::Internal(format!("candidate union: {e}")))?;
            self.algorithm
                .run_with(&cand, space, self.kernel)
                .into_iter()
                .map(|i| scratch.globals[i as usize])
                .collect()
        };
        lock_recover(&self.scratch_pool).push(scratch);
        match deadline {
            Some(d) if Instant::now() >= d => Err(ServeError::DeadlineExceeded { budget_ms: 0 }),
            _ => Ok(out),
        }
    }
}

impl SkylineSource for ShardedSource<'_> {
    fn label(&self) -> &'static str {
        if self.indexed {
            "sharded"
        } else {
            "sharded-scan"
        }
    }

    fn dims(&self) -> usize {
        self.cube.dims
    }

    fn num_objects(&self) -> usize {
        self.cube.plan.num_objects()
    }

    fn subspace_skyline(&self, space: DimMask) -> Result<Vec<ObjId>, ServeError> {
        self.merged(space, None)
    }

    fn subspace_skyline_within(
        &self,
        space: DimMask,
        deadline: Option<Instant>,
    ) -> Result<Vec<ObjId>, ServeError> {
        self.merged(space, deadline)
    }

    fn is_skyline_in(&self, o: ObjId, space: DimMask) -> Result<bool, ServeError> {
        check_space(space, self.cube.dims)?;
        check_object(o, self.num_objects())?;
        // Fast negative: an object dominated within its own shard is
        // dominated globally and never reaches the merge.
        let (k, local) = self.cube.plan.to_local(o);
        if self
            .shard_skyline(k, space, None)?
            .binary_search(&local)
            .is_err()
        {
            return Ok(false);
        }
        Ok(self.merged(space, None)?.binary_search(&o).is_ok())
    }

    fn membership_count(&self, o: ObjId) -> Result<u64, ServeError> {
        check_object(o, self.num_objects())?;
        let full = DimMask::full(self.cube.dims);
        let mut count = 0u64;
        for space in full.subsets() {
            if self.is_skyline_in(o, space)? {
                count += 1;
            }
        }
        Ok(count)
    }

    fn top_k_frequent(&self, k: usize) -> Vec<(ObjId, u64)> {
        let mut freq = vec![0u64; self.num_objects()];
        for space in DimMask::full(self.cube.dims).subsets() {
            let sky = self
                .merged(space, None)
                .expect("merging a valid subspace cannot fail");
            for o in sky {
                freq[o as usize] += 1;
            }
        }
        rank_frequencies(&freq, k)
    }

    fn groups_touched(&self) -> u64 {
        self.serves
            .iter()
            .map(|s| {
                s.scan.groups_touched()
                    + s.indexed.as_ref().map_or(0, SkylineSource::groups_touched)
            })
            .sum()
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        let mut total = CacheStats::default();
        for shard in &self.cube.shards {
            let s = shard.cache.stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.entries += s.entries;
            total.capacity += s.capacity;
            total.rejected += s.rejected;
            total.poison_recoveries += s.poison_recoveries;
        }
        Some(total)
    }

    fn index_stats(&self) -> Option<IndexStats> {
        if !self.indexed {
            return None;
        }
        let mut total = IndexStats::default();
        for serve in &self.serves {
            if let Some(stats) = serve.indexed.as_ref().and_then(SkylineSource::index_stats) {
                total.accumulate(&stats);
            }
        }
        Some(total)
    }

    fn demotions(&self) -> u64 {
        self.serves
            .iter()
            .map(|s| s.demotions.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::DirectSource;
    use skycube_types::running_example;

    fn mask(s: &str) -> DimMask {
        DimMask::parse(s).unwrap()
    }

    #[test]
    fn plan_mapping_round_trips() {
        let plan = ShardPlan::contiguous(10, 3);
        assert_eq!(plan.num_shards(), 3);
        assert_eq!(plan.num_objects(), 10);
        assert_eq!(plan.shard_range(0), 0..4);
        assert_eq!(plan.shard_range(1), 4..7);
        assert_eq!(plan.shard_range(2), 7..10);
        for g in 0..10u32 {
            let (k, l) = plan.to_local(g);
            assert!(plan.shard_range(k).contains(&(g as usize)));
            assert_eq!(plan.to_global(k, l), g);
            assert_eq!(plan.shard_of(g), k);
        }
    }

    #[test]
    fn hash_partitioning_is_a_structured_diagnostic() {
        let err = ShardPlan::hash(100, 4).unwrap_err();
        assert_eq!(err.kind(), "unsupported");
        let msg = err.to_string();
        assert!(msg.contains("contiguous"), "{msg}");
        assert!(msg.contains("last shard"), "{msg}");
        assert!(msg.contains("ShardPlan::contiguous"), "{msg}");
    }

    #[test]
    fn plan_tolerates_more_shards_than_objects() {
        let plan = ShardPlan::contiguous(2, 5);
        assert_eq!(plan.num_shards(), 5);
        let owners: Vec<usize> = (0..2u32).map(|g| plan.shard_of(g)).collect();
        assert_eq!(owners, vec![0, 1]);
        assert_eq!(plan.shard_range(4), 2..2);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn plan_rejects_zero_shards() {
        let _ = ShardPlan::contiguous(10, 0);
    }

    #[test]
    fn sharded_answers_match_direct_for_every_shard_count() {
        let ds = running_example();
        let direct = DirectSource::new(&ds);
        for shards in [1, 2, 3, 5] {
            let cube = ShardedCube::build(&ds, shards, Parallelism::sequential());
            for source in [cube.source(), cube.scan_source()] {
                for space in ds.full_space().subsets() {
                    assert_eq!(
                        source.subspace_skyline(space).unwrap(),
                        direct.subspace_skyline(space).unwrap(),
                        "{} K={shards} subspace {space}",
                        source.label()
                    );
                    for o in 0..ds.len() as ObjId {
                        assert_eq!(
                            source.is_skyline_in(o, space).unwrap(),
                            direct.is_skyline_in(o, space).unwrap(),
                            "{} K={shards} object {o} subspace {space}",
                            source.label()
                        );
                    }
                }
                for o in 0..ds.len() as ObjId {
                    assert_eq!(
                        source.membership_count(o).unwrap(),
                        direct.membership_count(o).unwrap(),
                        "K={shards} object {o}"
                    );
                }
                assert_eq!(source.top_k_frequent(10), direct.top_k_frequent(10));
            }
        }
    }

    #[test]
    fn sharded_diagnostics_match_the_unsharded_sources() {
        let ds = running_example();
        let cube = ShardedCube::build(&ds, 2, Parallelism::sequential());
        let source = cube.source();
        assert!(matches!(
            source.subspace_skyline(DimMask::EMPTY),
            Err(ServeError::BadSubspace(_))
        ));
        assert!(matches!(
            source.subspace_skyline(DimMask::single(9)),
            Err(ServeError::BadSubspace(_))
        ));
        assert!(matches!(
            source.membership_count(999),
            Err(ServeError::BadObject(_))
        ));
        assert!(matches!(
            source.is_skyline_in(999, mask("A")),
            Err(ServeError::BadObject(_))
        ));
    }

    #[test]
    fn insert_routes_to_one_shard_only() {
        let ds = running_example();
        let mut cube = ShardedCube::build(&ds, 2, Parallelism::sequential());
        // Warm both shard caches.
        let warm = cube.source();
        for space in ds.full_space().subsets() {
            warm.subspace_skyline(space).unwrap();
        }
        drop(warm);
        let gen_before: Vec<u64> = (0..2).map(|k| cube.shard_generation(k)).collect();
        let entries_before = cube.shard_cache_stats(0).entries;
        assert!(entries_before > 0, "shard 0 cache should be warm");
        // A dominated insert routes to the last shard and patches it there.
        let id = cube.insert(vec![9, 9, 11, 9]).unwrap();
        assert_eq!(id as usize, ds.len(), "global id continues the sequence");
        let delta = cube.last_delta().unwrap();
        assert_eq!(delta.shard(), Some(1));
        assert_eq!(cube.shard_generation(0), gen_before[0], "shard 0 mutated");
        assert_eq!(cube.shard_generation(1), gen_before[1] + 1);
        assert_eq!(
            cube.shard_cache_stats(0).entries,
            entries_before,
            "untouched shard lost cache entries"
        );
        // Post-insert answers still match direct computation.
        let mut rows: Vec<Vec<Value>> = ds.ids().map(|o| ds.row(o).to_vec()).collect();
        rows.push(vec![9, 9, 11, 9]);
        let fresh = Dataset::from_rows(ds.dims(), rows).unwrap();
        let direct = DirectSource::new(&fresh);
        let source = cube.source();
        for space in fresh.full_space().subsets() {
            assert_eq!(
                source.subspace_skyline(space).unwrap(),
                direct.subspace_skyline(space).unwrap(),
                "post-insert subspace {space}"
            );
        }
    }

    #[test]
    fn sharded_source_aggregates_stats() {
        let ds = running_example();
        let cube = ShardedCube::build(&ds, 3, Parallelism::sequential());
        let source = cube.source();
        for space in ds.full_space().subsets() {
            source.subspace_skyline(space).unwrap();
            source.subspace_skyline(space).unwrap();
        }
        let cache = source.cache_stats().unwrap();
        assert!(cache.hits > 0, "repeat queries must hit the shard caches");
        assert!(cache.entries > 0);
        let index = source.index_stats().unwrap();
        assert!(index.total_queries() > 0);
        assert!(source.groups_touched() > 0);
        assert_eq!(source.demotions(), 0);
        // Scan mode has no index to report.
        assert_eq!(cube.scan_source().index_stats(), None);
        assert_eq!(source.label(), "sharded");
        assert_eq!(cube.scan_source().label(), "sharded-scan");
    }

    #[test]
    fn streamed_build_matches_direct_build() {
        let ds = running_example();
        let plan = ShardPlan::contiguous(ds.len(), 2);
        let sizes: Vec<usize> = (0..2).map(|k| plan.shard_range(k).len()).collect();
        let streamed = ShardedCube::build_streamed(
            ds.dims(),
            &sizes,
            Parallelism::sequential(),
            Stellar::new(),
            |k| {
                let rows: Vec<Vec<Value>> = plan
                    .shard_range(k)
                    .map(|o| ds.row(o as ObjId).to_vec())
                    .collect();
                Dataset::from_rows(ds.dims(), rows).unwrap()
            },
        );
        let built = ShardedCube::build(&ds, 2, Parallelism::sequential());
        let (a, b) = (streamed.source(), built.source());
        for space in ds.full_space().subsets() {
            assert_eq!(
                a.subspace_skyline(space).unwrap(),
                b.subspace_skyline(space).unwrap()
            );
        }
    }

    #[test]
    fn reopened_shard_cubes_serve_and_maintain_like_built_ones() {
        let ds = running_example();
        let built = ShardedCube::build(&ds, 2, Parallelism::sequential());
        // Round-trip each shard cube through the binary format, then reopen.
        let cubes: Vec<_> = (0..2)
            .map(|k| {
                let mut bytes = Vec::new();
                skycube_stellar::write_cube_binary(built.engine(k).cube(), &mut bytes).unwrap();
                skycube_stellar::read_cube_binary(&bytes).unwrap()
            })
            .collect();
        assert!(cubes.iter().all(|c| c.is_loaded()));
        let mut reopened = ShardedCube::from_cubes(&ds, cubes, Stellar::new()).unwrap();
        assert_eq!(reopened.num_shards(), 2);
        assert_eq!(reopened.num_objects(), ds.len());
        let direct = DirectSource::new(&ds);
        {
            let source = reopened.source();
            for space in ds.full_space().subsets() {
                assert_eq!(
                    source.subspace_skyline(space).unwrap(),
                    direct.subspace_skyline(space).unwrap(),
                    "reopened subspace {space}"
                );
            }
            assert_eq!(source.top_k_frequent(10), direct.top_k_frequent(10));
        }
        // Maintenance on the reopened deployment still routes and patches.
        let id = reopened.insert(vec![9, 9, 11, 9]).unwrap();
        assert_eq!(id as usize, ds.len());
        assert_eq!(reopened.last_delta().unwrap().shard(), Some(1));
        let mut rows: Vec<Vec<Value>> = ds.ids().map(|o| ds.row(o).to_vec()).collect();
        rows.push(vec![9, 9, 11, 9]);
        let fresh = Dataset::from_rows(ds.dims(), rows).unwrap();
        let direct = DirectSource::new(&fresh);
        let source = reopened.source();
        for space in fresh.full_space().subsets() {
            assert_eq!(
                source.subspace_skyline(space).unwrap(),
                direct.subspace_skyline(space).unwrap(),
                "post-insert subspace {space}"
            );
        }
        // A mis-tiled reopen is rejected, not mis-served.
        let short = Dataset::from_rows(4, vec![vec![1, 2, 3, 4]]).unwrap();
        let cube = skycube_stellar::compute_cube(&ds);
        assert!(ShardedCube::from_cubes(&short, vec![cube], Stellar::new()).is_err());
    }

    #[test]
    fn empty_dataset_shards_cleanly() {
        let ds = Dataset::from_rows(3, vec![]).unwrap();
        let cube = ShardedCube::build(&ds, 4, Parallelism::sequential());
        let source = cube.source();
        assert_eq!(source.num_objects(), 0);
        assert_eq!(
            source.subspace_skyline(mask("AB")).unwrap(),
            Vec::<ObjId>::new()
        );
        assert_eq!(source.top_k_frequent(5), Vec::new());
    }
}
