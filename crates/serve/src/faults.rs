//! Deterministic fault injection for the serving tier.
//!
//! Enabled by the `faults` cargo feature only — nothing in this module is
//! compiled into a normal build. A [`FaultPlan`] is parsed from a compact
//! spec string (the CLI's `--inject-faults` argument) and describes which
//! failures to force:
//!
//! ```text
//! panic-route            panic on every skyline query
//! panic-route=3          panic on every 3rd skyline query (1-based)
//! slow-route=50          sleep 50 ms inside every skyline query
//! corrupt-cube           flip bytes in a serialized cube before loading
//! poison-cache           poison the subspace cache's lock before the batch
//! kill-mid-mutation      abort the process after the 1st WAL append,
//!                        before the engine patches (kill-mid-mutation=N
//!                        for the Nth) — the crash-recovery worst case
//! torn-wal-tail=13       append 13 garbage bytes to the WAL before the
//!                        daemon opens it, forcing the truncation path
//! slow-client=50         sleep 50 ms after each chunk read from a
//!                        connection, simulating a dribbling client
//! seed=42                seed for the deterministic corruption rng
//! ```
//!
//! Faults are driven from two hooks: [`FaultySource`] wraps any
//! [`SkylineSource`] and injects the route faults, and [`corrupt_bytes`]
//! deterministically garbles a serialized cube. Determinism matters: the
//! same spec must reproduce the same failure in CI and at a keyboard.

use crate::error::ServeError;
use crate::source::SkylineSource;
use crate::{CacheStats, IndexStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skycube_types::{DimMask, ObjId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Which faults to force, parsed from a `--inject-faults` spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Panic inside every `period`-th skyline query (1 = every query).
    pub panic_route: Option<u64>,
    /// Sleep this long inside every skyline query.
    pub slow_route: Option<Duration>,
    /// Garble the serialized cube before it is loaded.
    pub corrupt_cube: bool,
    /// Poison the subspace cache's lock before running the batch.
    pub poison_cache: bool,
    /// `kill -9` the process (via `std::process::abort`) right after the
    /// `n`-th WAL record is fsync'd and *before* the engine patches — the
    /// worst-case crash point the recovery contract must survive.
    pub kill_mid_mutation: Option<u64>,
    /// Append this many garbage bytes to the WAL before opening it, so the
    /// torn-tail truncation path provably fires.
    pub torn_wal_tail: Option<u64>,
    /// Dribble: sleep this long after every chunk read from a connection,
    /// simulating a slow client pinning a pool worker.
    pub slow_client: Option<Duration>,
    /// Seed for the deterministic corruption rng.
    pub seed: u64,
}

impl FaultPlan {
    /// Parse a comma-separated spec (`panic-route=2,slow-route=50,seed=7`).
    /// Unknown faults and malformed values are rejected with the offending
    /// token, so a typo cannot silently disable a planned fault.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for token in spec.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            let (key, value) = match token.split_once('=') {
                Some((k, v)) => (k, Some(v)),
                None => (token, None),
            };
            let number = |what: &str| -> Result<u64, String> {
                value
                    .ok_or_else(|| format!("fault {key:?} needs a value: {key}=<{what}>"))?
                    .parse::<u64>()
                    .map_err(|_| format!("fault {key:?} has a malformed {what}: {token:?}"))
            };
            match key {
                "panic-route" => {
                    let period = match value {
                        Some(_) => number("period")?,
                        None => 1,
                    };
                    if period == 0 {
                        return Err("fault \"panic-route\" period must be >= 1".to_owned());
                    }
                    plan.panic_route = Some(period);
                }
                "slow-route" => plan.slow_route = Some(Duration::from_millis(number("ms")?)),
                "corrupt-cube" => plan.corrupt_cube = true,
                "poison-cache" => plan.poison_cache = true,
                "kill-mid-mutation" => {
                    let nth = match value {
                        Some(_) => number("nth")?,
                        None => 1,
                    };
                    if nth == 0 {
                        return Err("fault \"kill-mid-mutation\" nth must be >= 1".to_owned());
                    }
                    plan.kill_mid_mutation = Some(nth);
                }
                "torn-wal-tail" => {
                    plan.torn_wal_tail = Some(match value {
                        Some(_) => number("bytes")?,
                        None => 13,
                    });
                }
                "slow-client" => plan.slow_client = Some(Duration::from_millis(number("ms")?)),
                "seed" => plan.seed = number("seed")?,
                _ => return Err(format!("unknown fault {key:?} in spec {spec:?}")),
            }
        }
        Ok(plan)
    }

    /// Whether any fault is planned at all.
    pub fn is_active(&self) -> bool {
        self.panic_route.is_some()
            || self.slow_route.is_some()
            || self.corrupt_cube
            || self.poison_cache
            || self.kill_mid_mutation.is_some()
            || self.torn_wal_tail.is_some()
            || self.slow_client.is_some()
    }
}

/// Deterministically garble a serialized artifact: flip several bytes (and
/// truncate the tail when the seed says so) using the plan's seed. The
/// same `(bytes, seed)` pair always yields the same corruption.
pub fn corrupt_bytes(bytes: &[u8], seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = bytes.to_vec();
    if out.is_empty() {
        return out;
    }
    if rng.gen_bool(0.5) {
        // Truncate somewhere inside the payload.
        let keep = rng.gen_range(0..out.len());
        out.truncate(keep);
    }
    let flips = rng.gen_range(1..=4usize);
    for _ in 0..flips {
        if out.is_empty() {
            break;
        }
        let at = rng.gen_range(0..out.len());
        let bit = rng.gen_range(0..8u32);
        out[at] ^= 1 << bit;
    }
    out
}

/// A [`SkylineSource`] wrapper that injects the plan's route faults into
/// skyline queries: a panic every `panic-route` periods and/or a
/// `slow-route` sleep before delegating. Point queries and analytics pass
/// through untouched, so a faulty plan degrades exactly the query family
/// the plan names.
pub struct FaultySource<'a> {
    inner: &'a dyn SkylineSource,
    plan: FaultPlan,
    skyline_queries: AtomicU64,
}

impl<'a> FaultySource<'a> {
    /// Wrap `inner` with the route faults of `plan`.
    pub fn new(inner: &'a dyn SkylineSource, plan: FaultPlan) -> Self {
        FaultySource {
            inner,
            plan,
            skyline_queries: AtomicU64::new(0),
        }
    }

    fn inject(&self) {
        let n = self.skyline_queries.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(ms) = self.plan.slow_route {
            std::thread::sleep(ms);
        }
        if let Some(period) = self.plan.panic_route {
            if n.is_multiple_of(period) {
                panic!("fault injection: panic-route fired on skyline query {n}");
            }
        }
    }
}

impl SkylineSource for FaultySource<'_> {
    fn label(&self) -> &'static str {
        self.inner.label()
    }

    fn dims(&self) -> usize {
        self.inner.dims()
    }

    fn num_objects(&self) -> usize {
        self.inner.num_objects()
    }

    fn subspace_skyline(&self, space: DimMask) -> Result<Vec<ObjId>, ServeError> {
        self.inject();
        self.inner.subspace_skyline(space)
    }

    fn subspace_skyline_within(
        &self,
        space: DimMask,
        deadline: Option<Instant>,
    ) -> Result<Vec<ObjId>, ServeError> {
        self.inject();
        self.inner.subspace_skyline_within(space, deadline)
    }

    fn skyband(&self, k: usize, space: DimMask) -> Result<Vec<ObjId>, ServeError> {
        self.inner.skyband(k, space)
    }

    fn is_skyline_in(&self, o: ObjId, space: DimMask) -> Result<bool, ServeError> {
        self.inner.is_skyline_in(o, space)
    }

    fn membership_count(&self, o: ObjId) -> Result<u64, ServeError> {
        self.inner.membership_count(o)
    }

    fn top_k_frequent(&self, k: usize) -> Vec<(ObjId, u64)> {
        self.inner.top_k_frequent(k)
    }

    fn groups_touched(&self) -> u64 {
        self.inner.groups_touched()
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        self.inner.cache_stats()
    }

    fn index_stats(&self) -> Option<IndexStats> {
        self.inner.index_stats()
    }

    fn demotions(&self) -> u64 {
        self.inner.demotions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_and_reject() {
        let plan = FaultPlan::parse("panic-route").unwrap();
        assert_eq!(plan.panic_route, Some(1));
        let plan = FaultPlan::parse("panic-route=3,slow-route=50,seed=7").unwrap();
        assert_eq!(plan.panic_route, Some(3));
        assert_eq!(plan.slow_route, Some(Duration::from_millis(50)));
        assert_eq!(plan.seed, 7);
        assert!(plan.is_active());
        let plan = FaultPlan::parse("corrupt-cube,poison-cache").unwrap();
        assert!(plan.corrupt_cube && plan.poison_cache);
        assert!(!FaultPlan::parse("").unwrap().is_active());

        let plan = FaultPlan::parse("kill-mid-mutation,torn-wal-tail,slow-client=25").unwrap();
        assert_eq!(plan.kill_mid_mutation, Some(1));
        assert_eq!(plan.torn_wal_tail, Some(13));
        assert_eq!(plan.slow_client, Some(Duration::from_millis(25)));
        assert!(plan.is_active());
        let plan = FaultPlan::parse("kill-mid-mutation=3,torn-wal-tail=64").unwrap();
        assert_eq!(plan.kill_mid_mutation, Some(3));
        assert_eq!(plan.torn_wal_tail, Some(64));

        assert!(FaultPlan::parse("panic-route=0").is_err());
        assert!(FaultPlan::parse("panic-route=x").is_err());
        assert!(FaultPlan::parse("slow-route").is_err());
        assert!(FaultPlan::parse("kill-mid-mutation=0").is_err());
        assert!(FaultPlan::parse("slow-client").is_err());
        assert!(FaultPlan::parse("warp-core-breach").is_err());
        assert!(FaultPlan::parse("seed=").is_err());
    }

    #[test]
    fn corruption_is_deterministic_and_changes_the_bytes() {
        let bytes: Vec<u8> = (0..200u8).collect();
        for seed in 0..32 {
            let a = corrupt_bytes(&bytes, seed);
            let b = corrupt_bytes(&bytes, seed);
            assert_eq!(a, b, "seed {seed} not deterministic");
            assert_ne!(a, bytes, "seed {seed} left the bytes intact");
        }
        assert!(corrupt_bytes(&[], 1).is_empty());
    }
}
