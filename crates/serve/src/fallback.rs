//! Graceful degradation: the [`FallbackSource`] ladder.
//!
//! A serving deployment keeps several ways to answer the same query
//! families at different cost/robustness points: the indexed cube (fast,
//! most machinery), the cube scan (slower, almost no machinery), and
//! direct computation from the dataset (slowest, no precomputed state at
//! all). `FallbackSource` chains them: a query runs on the first rung, and
//! if that rung fails with a *demotable* error — a panic, a blown
//! deadline, corrupt state — the query is retried on the next rung, and
//! the demotion is counted in [`SkylineSource::demotions`].
//!
//! Two deliberate policy choices:
//!
//! - **Caller faults never demote.** An invalid subspace or object id
//!   would be rejected identically by every rung
//!   ([`ServeError::is_demotable`] is false), so the ladder returns the
//!   first rung's diagnostic immediately.
//! - **Fallback rungs run without a deadline.** Once the fast path has
//!   been demoted, the contract becomes *demoted-but-correct*: a late
//!   right answer beats a repeated timeout from a rung that is slower by
//!   construction. The demotion count is how callers observe the latency
//!   contract was missed.

use crate::cache::CacheStats;
use crate::error::ServeError;
use crate::source::{IndexStats, SkylineSource};
use skycube_types::{DimMask, ObjId};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A ladder of [`SkylineSource`]s tried in order until one answers.
///
/// The ladder reports the *primary* rung's identity (label, dims, stats)
/// so that installing it is invisible to reporting when nothing goes
/// wrong; only [`Self::demotions`] reveals degraded traffic.
pub struct FallbackSource<'a> {
    rungs: Vec<&'a dyn SkylineSource>,
    demotions: AtomicU64,
}

impl<'a> FallbackSource<'a> {
    /// A ladder with `primary` as its only rung (add more with
    /// [`Self::then`]).
    pub fn new(primary: &'a dyn SkylineSource) -> Self {
        FallbackSource {
            rungs: vec![primary],
            demotions: AtomicU64::new(0),
        }
    }

    /// Append a cheaper rung to fall back to.
    pub fn then(mut self, next: &'a dyn SkylineSource) -> Self {
        self.rungs.push(next);
        self
    }

    /// Number of rungs in the ladder.
    pub fn num_rungs(&self) -> usize {
        self.rungs.len()
    }

    /// Run `f` down the ladder. Rung 0 gets the caller's deadline; later
    /// rungs run unbounded (see the module docs). A rung's panic is caught
    /// and treated as a demotable failure; if the *last* rung panics, the
    /// panic resumes so the batch executor classifies it.
    fn run<T>(
        &self,
        deadline: Option<Instant>,
        f: impl Fn(&dyn SkylineSource, Option<Instant>) -> Result<T, ServeError>,
    ) -> Result<T, ServeError> {
        let mut last_err: Option<ServeError> = None;
        for (i, rung) in self.rungs.iter().enumerate() {
            let rung_deadline = if i == 0 { deadline } else { None };
            let last = i + 1 == self.rungs.len();
            // AssertUnwindSafe: panicking rungs may poison interior locks;
            // every lock in this crate recovers on its next acquisition.
            let outcome = catch_unwind(AssertUnwindSafe(|| f(*rung, rung_deadline)));
            let err = match outcome {
                Ok(Ok(v)) => return Ok(v),
                Ok(Err(e)) if !e.is_demotable() => return Err(e),
                Ok(Err(e)) => e,
                Err(payload) if last => resume_unwind(payload),
                Err(payload) => {
                    ServeError::SourcePanicked(crate::batch::panic_message(payload.as_ref()))
                }
            };
            if last {
                return Err(err);
            }
            self.demotions.fetch_add(1, Ordering::Relaxed);
            last_err = Some(err);
        }
        // Unreachable with ≥1 rung; keep a diagnostic rather than a panic.
        Err(last_err
            .unwrap_or_else(|| ServeError::Internal("fallback ladder has no rungs".to_owned())))
    }
}

impl SkylineSource for FallbackSource<'_> {
    fn label(&self) -> &'static str {
        self.rungs[0].label()
    }

    fn dims(&self) -> usize {
        self.rungs[0].dims()
    }

    fn num_objects(&self) -> usize {
        self.rungs[0].num_objects()
    }

    fn subspace_skyline(&self, space: DimMask) -> Result<Vec<ObjId>, ServeError> {
        self.run(None, |s, d| s.subspace_skyline_within(space, d))
    }

    fn subspace_skyline_within(
        &self,
        space: DimMask,
        deadline: Option<Instant>,
    ) -> Result<Vec<ObjId>, ServeError> {
        self.run(deadline, |s, d| s.subspace_skyline_within(space, d))
    }

    fn skyband(&self, k: usize, space: DimMask) -> Result<Vec<ObjId>, ServeError> {
        // `Unsupported` from a cube-backed rung is demotable, so a deep
        // skyband rides the ladder down to a dataset-backed rung.
        self.run(None, |s, _| s.skyband(k, space))
    }

    fn is_skyline_in(&self, o: ObjId, space: DimMask) -> Result<bool, ServeError> {
        self.run(None, |s, _| s.is_skyline_in(o, space))
    }

    fn membership_count(&self, o: ObjId) -> Result<u64, ServeError> {
        self.run(None, |s, _| s.membership_count(o))
    }

    fn top_k_frequent(&self, k: usize) -> Vec<(ObjId, u64)> {
        // Infallible in the trait; demote only on panic.
        for (i, rung) in self.rungs.iter().enumerate() {
            let last = i + 1 == self.rungs.len();
            match catch_unwind(AssertUnwindSafe(|| rung.top_k_frequent(k))) {
                Ok(v) => return v,
                Err(payload) if last => resume_unwind(payload),
                Err(_) => {
                    self.demotions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Vec::new()
    }

    fn groups_touched(&self) -> u64 {
        self.rungs.iter().map(|r| r.groups_touched()).sum()
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        self.rungs[0].cache_stats()
    }

    fn index_stats(&self) -> Option<IndexStats> {
        self.rungs[0].index_stats()
    }

    fn demotions(&self) -> u64 {
        self.demotions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{DirectSource, IndexedCubeSource, ScanCubeSource};
    use skycube_stellar::compute_cube;
    use skycube_types::running_example;

    /// A source that always fails its skyline queries with a demotable
    /// error (or a panic), for exercising the ladder.
    struct BrokenSource {
        panics: bool,
    }

    impl SkylineSource for BrokenSource {
        fn label(&self) -> &'static str {
            "broken"
        }
        fn dims(&self) -> usize {
            4
        }
        fn num_objects(&self) -> usize {
            5
        }
        fn subspace_skyline(&self, _space: DimMask) -> Result<Vec<ObjId>, ServeError> {
            if self.panics {
                panic!("broken source panicked");
            }
            Err(ServeError::Internal("broken source".to_owned()))
        }
        fn is_skyline_in(&self, _o: ObjId, _space: DimMask) -> Result<bool, ServeError> {
            Err(ServeError::Internal("broken source".to_owned()))
        }
        fn membership_count(&self, _o: ObjId) -> Result<u64, ServeError> {
            Err(ServeError::Internal("broken source".to_owned()))
        }
        fn top_k_frequent(&self, _k: usize) -> Vec<(ObjId, u64)> {
            panic!("broken source panicked");
        }
    }

    #[test]
    fn healthy_primary_never_demotes() {
        let ds = running_example();
        let cube = compute_cube(&ds);
        let indexed = IndexedCubeSource::new(&cube);
        let scan = ScanCubeSource::new(&cube);
        let ladder = FallbackSource::new(&indexed).then(&scan);
        assert_eq!(ladder.label(), "stellar");
        for space in ds.full_space().subsets() {
            assert_eq!(
                ladder.subspace_skyline(space).unwrap(),
                scan.subspace_skyline(space).unwrap()
            );
        }
        assert_eq!(ladder.demotions(), 0);
        assert!(ladder.index_stats().is_some());
    }

    #[test]
    fn failing_primary_demotes_to_the_next_rung() {
        let ds = running_example();
        let cube = compute_cube(&ds);
        let broken = BrokenSource { panics: false };
        let scan = ScanCubeSource::new(&cube);
        let direct = DirectSource::new(&ds);
        let ladder = FallbackSource::new(&broken).then(&scan).then(&direct);
        let space = DimMask::parse("BD").unwrap();
        assert_eq!(
            ladder.subspace_skyline(space).unwrap(),
            scan.subspace_skyline(space).unwrap()
        );
        assert_eq!(ladder.demotions(), 1);
        assert_eq!(ladder.membership_count(4).unwrap(), 10);
        assert_eq!(ladder.demotions(), 2);
    }

    #[test]
    fn panicking_primary_demotes_instead_of_unwinding() {
        let ds = running_example();
        let cube = compute_cube(&ds);
        let broken = BrokenSource { panics: true };
        let scan = ScanCubeSource::new(&cube);
        let ladder = FallbackSource::new(&broken).then(&scan);
        let space = DimMask::parse("BD").unwrap();
        assert_eq!(
            ladder.subspace_skyline(space).unwrap(),
            scan.subspace_skyline(space).unwrap()
        );
        assert_eq!(ladder.demotions(), 1);
        // The infallible analytic also rides the ladder.
        assert_eq!(ladder.top_k_frequent(2), scan.top_k_frequent(2));
        assert_eq!(ladder.demotions(), 2);
    }

    #[test]
    fn caller_faults_return_without_demoting() {
        let ds = running_example();
        let cube = compute_cube(&ds);
        let indexed = IndexedCubeSource::new(&cube);
        let scan = ScanCubeSource::new(&cube);
        let ladder = FallbackSource::new(&indexed).then(&scan);
        let err = ladder.subspace_skyline(DimMask::EMPTY).unwrap_err();
        assert_eq!(err.kind(), "bad-subspace");
        let err = ladder.membership_count(999).unwrap_err();
        assert_eq!(err.kind(), "bad-object");
        assert_eq!(ladder.demotions(), 0);
    }

    #[test]
    fn exhausted_ladder_reports_the_last_error() {
        let broken = BrokenSource { panics: false };
        let also_broken = BrokenSource { panics: false };
        let ladder = FallbackSource::new(&broken).then(&also_broken);
        let err = ladder
            .subspace_skyline(DimMask::parse("A").unwrap())
            .unwrap_err();
        assert_eq!(err.kind(), "internal");
        // One demotion (broken → also_broken); the final failure is not a
        // demotion, it is the answer.
        assert_eq!(ladder.demotions(), 1);
    }

    #[test]
    fn expired_deadline_on_the_primary_demotes_and_still_answers() {
        let ds = running_example();
        let cube = compute_cube(&ds);
        let indexed = IndexedCubeSource::new(&cube);
        let scan = ScanCubeSource::new(&cube);
        let ladder = FallbackSource::new(&indexed).then(&scan);
        let space = DimMask::parse("BD").unwrap();
        // A deadline in the past trips the index's first checkpoint; the
        // scan rung then answers unbounded.
        let past = Instant::now() - std::time::Duration::from_millis(10);
        let sky = ladder.subspace_skyline_within(space, Some(past)).unwrap();
        assert_eq!(sky, scan.subspace_skyline(space).unwrap());
        assert_eq!(ladder.demotions(), 1);
    }
}
