//! The serving tier's error taxonomy.
//!
//! Every fallible operation in this crate returns a [`ServeError`] instead
//! of a bare `String` (or a panic): callers can match on the variant,
//! report the stable [`ServeError::kind`] code, and — in the
//! [`crate::FallbackSource`] ladder — decide whether a failure is worth
//! retrying on a cheaper source ([`ServeError::is_demotable`]).

use skycube_stellar::QueryError;
use std::fmt;

/// A classified serving-tier failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The queried subspace is empty or outside the full space — the
    /// caller's fault; every source would reject it identically.
    BadSubspace(String),
    /// The object id is beyond the dataset — also the caller's fault.
    BadObject(String),
    /// A workload line failed to parse; carries the 1-based line number.
    BadWorkload {
        /// 1-based line number of the offending workload line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// A persisted cube failed to load or validate.
    CorruptCube(String),
    /// The query ran past its deadline at a cooperative checkpoint.
    DeadlineExceeded {
        /// The configured per-query budget, in milliseconds (0 when the
        /// budget was expressed as an absolute deadline only).
        budget_ms: u64,
    },
    /// A source panicked while answering; the panic was caught and the
    /// batch survived.
    SourcePanicked(String),
    /// An admission control refused the work (e.g. a cache entry above the
    /// byte budget, or a daemon shedding load) rather than exhausting a
    /// resource.
    ResourceExhausted(String),
    /// The source cannot answer this query family (e.g. a k-skyband on a
    /// cube-backed source, which holds only the k=1 layer). Demotable: a
    /// dataset-backed rung further down the ladder may well support it.
    Unsupported(String),
    /// An invariant the serving tier relies on failed — a bug, not a bad
    /// input.
    Internal(String),
}

impl ServeError {
    /// Stable machine-readable code for the variant, used in CLI output
    /// and test assertions (`bad-subspace`, `bad-object`, `bad-workload`,
    /// `corrupt-cube`, `deadline`, `panic`, `resource-exhausted`,
    /// `unsupported`, `internal`).
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::BadSubspace(_) => "bad-subspace",
            ServeError::BadObject(_) => "bad-object",
            ServeError::BadWorkload { .. } => "bad-workload",
            ServeError::CorruptCube(_) => "corrupt-cube",
            ServeError::DeadlineExceeded { .. } => "deadline",
            ServeError::SourcePanicked(_) => "panic",
            ServeError::ResourceExhausted(_) => "resource-exhausted",
            ServeError::Unsupported(_) => "unsupported",
            ServeError::Internal(_) => "internal",
        }
    }

    /// Whether a [`crate::FallbackSource`] should retry this failure on the
    /// next rung. Caller-fault errors (`BadSubspace`, `BadObject`,
    /// `BadWorkload`) are not demotable — every rung would reject them the
    /// same way, so demoting only burns work and miscounts the ladder.
    pub fn is_demotable(&self) -> bool {
        !matches!(
            self,
            ServeError::BadSubspace(_) | ServeError::BadObject(_) | ServeError::BadWorkload { .. }
        )
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadSubspace(msg)
            | ServeError::BadObject(msg)
            | ServeError::Internal(msg) => write!(f, "{msg}"),
            ServeError::BadWorkload { line, message } => write!(f, "line {line}: {message}"),
            ServeError::CorruptCube(msg) => write!(f, "corrupt cube: {msg}"),
            ServeError::DeadlineExceeded { budget_ms } => {
                if *budget_ms > 0 {
                    write!(f, "query exceeded its {budget_ms} ms deadline")
                } else {
                    write!(f, "query exceeded its deadline")
                }
            }
            ServeError::SourcePanicked(msg) => write!(f, "source panicked: {msg}"),
            ServeError::ResourceExhausted(msg) => write!(f, "resource exhausted: {msg}"),
            ServeError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<QueryError> for ServeError {
    fn from(e: QueryError) -> Self {
        match e {
            QueryError::EmptySubspace | QueryError::SubspaceOutOfRange { .. } => {
                ServeError::BadSubspace(e.to_string())
            }
            QueryError::ObjectOutOfRange { .. } => ServeError::BadObject(e.to_string()),
            QueryError::DeadlineExceeded => ServeError::DeadlineExceeded { budget_ms: 0 },
        }
    }
}

impl From<skycube_types::Error> for ServeError {
    fn from(e: skycube_types::Error) -> Self {
        use skycube_types::Error;
        match e {
            // A caller named an object the dataset does not hold: their
            // fault, never demotable — every rung rejects it identically.
            Error::NoSuchObject { .. } => ServeError::BadObject(e.to_string()),
            Error::Corrupt { .. } | Error::Parse { .. } => ServeError::CorruptCube(e.to_string()),
            Error::BadDimensionality { .. } | Error::RowLengthMismatch { .. } | Error::Io(_) => {
                ServeError::Internal(e.to_string())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycube_types::DimMask;

    #[test]
    fn kinds_are_stable_and_displayed() {
        let cases: Vec<(ServeError, &str)> = vec![
            (ServeError::BadSubspace("bad".into()), "bad-subspace"),
            (ServeError::BadObject("bad".into()), "bad-object"),
            (
                ServeError::BadWorkload {
                    line: 2,
                    message: "nope".into(),
                },
                "bad-workload",
            ),
            (ServeError::CorruptCube("short".into()), "corrupt-cube"),
            (ServeError::DeadlineExceeded { budget_ms: 5 }, "deadline"),
            (ServeError::SourcePanicked("boom".into()), "panic"),
            (
                ServeError::ResourceExhausted("too big".into()),
                "resource-exhausted",
            ),
            (ServeError::Unsupported("skyband".into()), "unsupported"),
            (ServeError::Internal("bug".into()), "internal"),
        ];
        for (e, kind) in cases {
            assert_eq!(e.kind(), kind);
            assert!(!e.to_string().is_empty());
        }
        assert_eq!(
            ServeError::BadWorkload {
                line: 2,
                message: "nope".into()
            }
            .to_string(),
            "line 2: nope"
        );
    }

    #[test]
    fn caller_faults_are_not_demotable() {
        assert!(!ServeError::BadSubspace("x".into()).is_demotable());
        assert!(!ServeError::BadObject("x".into()).is_demotable());
        assert!(!ServeError::BadWorkload {
            line: 1,
            message: "x".into()
        }
        .is_demotable());
        assert!(ServeError::DeadlineExceeded { budget_ms: 1 }.is_demotable());
        assert!(ServeError::SourcePanicked("x".into()).is_demotable());
        assert!(ServeError::CorruptCube("x".into()).is_demotable());
        assert!(ServeError::ResourceExhausted("x".into()).is_demotable());
        assert!(ServeError::Unsupported("x".into()).is_demotable());
        assert!(ServeError::Internal("x".into()).is_demotable());
    }

    #[test]
    fn query_errors_convert_with_the_right_kind() {
        let e: ServeError = QueryError::EmptySubspace.into();
        assert_eq!(e.kind(), "bad-subspace");
        let e: ServeError = QueryError::SubspaceOutOfRange {
            space: DimMask::single(9),
            dims: 4,
        }
        .into();
        assert_eq!(e.kind(), "bad-subspace");
        assert!(e.to_string().contains("not a subspace"));
        let e: ServeError = QueryError::ObjectOutOfRange {
            object: 9,
            num_objects: 5,
        }
        .into();
        assert_eq!(e.kind(), "bad-object");
        let e: ServeError = QueryError::DeadlineExceeded.into();
        assert_eq!(e.kind(), "deadline");
    }

    #[test]
    fn dataset_errors_convert_with_the_right_kind() {
        let e: ServeError = skycube_types::Error::NoSuchObject { id: 9, len: 5 }.into();
        assert_eq!(e.kind(), "bad-object");
        assert!(!e.is_demotable(), "caller faults must not demote");
        assert!(e.to_string().contains("no such object 9"));
        let e: ServeError = skycube_types::Error::RowLengthMismatch {
            row: 0,
            expected: 4,
            actual: 2,
        }
        .into();
        assert_eq!(e.kind(), "internal");
    }
}
