//! Text workload format: one query per line.
//!
//! ```text
//! skyline ABD     # subspace skyline of {A, B, D}
//! skyband 2 ABD   # 2-skyband of {A, B, D} (dominated by < 2 others)
//! member 17 ABD   # is object 17 a skyline object of {A, B, D}?
//! count 17        # in how many subspaces is object 17 a skyline object?
//! top 5           # the 5 most frequent subspace-skyline objects
//! ```
//!
//! Blank lines and lines starting with `#` are ignored; `#` also starts a
//! trailing comment on a query line.

use crate::error::ServeError;
use skycube_types::{DimMask, ObjId};
use std::fmt;

/// One parsed workload query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Query {
    /// `skyline <SPACE>`: the subspace skyline of `SPACE`.
    Skyline(DimMask),
    /// `skyband <K> <SPACE>`: the objects of `SPACE` dominated by fewer
    /// than `K` others (the k-skyband; `K = 1` is exactly the skyline).
    Skyband(usize, DimMask),
    /// `member <ID> <SPACE>`: is the object a skyline object of `SPACE`?
    Member(ObjId, DimMask),
    /// `count <ID>`: the object's subspace-skyline membership count.
    Count(ObjId),
    /// `top <K>`: the `K` most frequent subspace-skyline objects.
    Top(usize),
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Skyline(space) => write!(f, "skyline {space}"),
            Query::Skyband(k, space) => write!(f, "skyband {k} {space}"),
            Query::Member(o, space) => write!(f, "member {o} {space}"),
            Query::Count(o) => write!(f, "count {o}"),
            Query::Top(k) => write!(f, "top {k}"),
        }
    }
}

fn parse_space(token: &str) -> Result<DimMask, String> {
    let mask = DimMask::parse(token)
        .ok_or_else(|| format!("bad subspace {token:?}: expected dimension letters like ABD"))?;
    if mask.is_empty() {
        return Err(format!(
            "bad subspace {token:?}: a query subspace must name at least one dimension"
        ));
    }
    // DimMask::parse ORs letters together, so "AAB" would silently collapse
    // to AB; a repeated letter is almost certainly a workload typo.
    if token.chars().count() != mask.len() {
        return Err(format!(
            "bad subspace {token:?}: dimension letters must not repeat"
        ));
    }
    Ok(mask)
}

fn parse_id(token: &str) -> Result<ObjId, String> {
    match token.parse::<u64>() {
        Ok(wide) => ObjId::try_from(wide).map_err(|_| {
            format!(
                "bad object id {token:?}: exceeds the maximum id {}",
                ObjId::MAX
            )
        }),
        Err(_) => Err(format!(
            "bad object id {token:?}: expected a non-negative integer"
        )),
    }
}

/// Parse one workload line. Returns `Ok(None)` for blank and comment lines,
/// `Ok(Some(query))` for a query, and a diagnostic (without line number —
/// [`parse_workload`] adds it) otherwise.
pub fn parse_query_line(line: &str) -> Result<Option<Query>, String> {
    let line = match line.find('#') {
        Some(at) => &line[..at],
        None => line,
    };
    let mut tokens = line.split_whitespace();
    let Some(op) = tokens.next() else {
        return Ok(None);
    };
    let mut arg = |what: &str| {
        tokens
            .next()
            .map(str::to_owned)
            .ok_or_else(|| format!("`{op}` is missing its {what} argument"))
    };
    let query = match op {
        "skyline" => Query::Skyline(parse_space(&arg("subspace")?)?),
        "skyband" => {
            let token = arg("k")?;
            let k = token
                .parse::<usize>()
                .map_err(|_| format!("bad k {token:?}: expected a positive integer"))?;
            if k == 0 {
                return Err(
                    "bad k 0: the 0-skyband is empty by definition (no object is dominated \
                     by fewer than zero others); use k ≥ 1, where k = 1 is the skyline"
                        .to_string(),
                );
            }
            Query::Skyband(k, parse_space(&arg("subspace")?)?)
        }
        "member" => {
            let o = parse_id(&arg("object-id")?)?;
            Query::Member(o, parse_space(&arg("subspace")?)?)
        }
        "count" => Query::Count(parse_id(&arg("object-id")?)?),
        "top" => {
            let token = arg("k")?;
            let k = token
                .parse::<usize>()
                .map_err(|_| format!("bad k {token:?}: expected a non-negative integer"))?;
            Query::Top(k)
        }
        other => {
            return Err(format!(
                "unknown query {other:?} (expected skyline, skyband, member, count or top)"
            ))
        }
    };
    if let Some(extra) = tokens.next() {
        return Err(format!("trailing token {extra:?} after `{query}`"));
    }
    Ok(Some(query))
}

/// Parse a whole workload, one query per line. Diagnostics come back as
/// [`ServeError::BadWorkload`] carrying the 1-based line number of the
/// offending line (its `Display` keeps the legacy `line N: …` shape).
pub fn parse_workload(text: &str) -> Result<Vec<Query>, ServeError> {
    let mut queries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        match parse_query_line(line) {
            Ok(Some(q)) => queries.push(q),
            Ok(None) => {}
            Err(message) => {
                return Err(ServeError::BadWorkload {
                    line: i + 1,
                    message,
                })
            }
        }
    }
    Ok(queries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_query_family() {
        let text =
            "\n# warmup\nskyline ABD\nskyband 2 ABD\nmember 17 ABD  # inline note\ncount 17\ntop 5\n";
        let queries = parse_workload(text).unwrap();
        assert_eq!(
            queries,
            vec![
                Query::Skyline(DimMask::from_dims([0, 1, 3])),
                Query::Skyband(2, DimMask::from_dims([0, 1, 3])),
                Query::Member(17, DimMask::from_dims([0, 1, 3])),
                Query::Count(17),
                Query::Top(5),
            ]
        );
    }

    #[test]
    fn skyband_zero_is_rejected_with_the_line_number() {
        let err = parse_workload("skyline AB\nskyband 0 AB\n").unwrap_err();
        assert_eq!(err.kind(), "bad-workload");
        assert!(
            matches!(err, ServeError::BadWorkload { line: 2, .. }),
            "{err}"
        );
        assert!(err.to_string().contains("0-skyband is empty"), "{err}");
        assert!(err.to_string().contains("k ≥ 1"), "{err}");
        // Bad/missing arguments get their own diagnostics.
        let err = parse_query_line("skyband x AB").unwrap_err();
        assert!(err.contains("bad k"), "{err}");
        let err = parse_query_line("skyband 2").unwrap_err();
        assert!(err.contains("missing its subspace argument"), "{err}");
    }

    #[test]
    fn display_round_trips() {
        for q in [
            Query::Skyline(DimMask::from_dims([1, 2])),
            Query::Skyband(3, DimMask::from_dims([1, 2])),
            Query::Member(3, DimMask::from_dims([0])),
            Query::Count(0),
            Query::Top(10),
        ] {
            assert_eq!(parse_query_line(&q.to_string()).unwrap(), Some(q));
        }
    }

    #[test]
    fn diagnostics_name_the_line() {
        let err = parse_workload("skyline AB\nfetch AB\n").unwrap_err();
        assert_eq!(err.kind(), "bad-workload");
        assert!(
            matches!(err, ServeError::BadWorkload { line: 2, .. }),
            "{err}"
        );
        assert!(err.to_string().starts_with("line 2:"), "{err}");
        assert!(err.to_string().contains("unknown query"), "{err}");

        let err = parse_workload("member 1\n").unwrap_err().to_string();
        assert!(err.starts_with("line 1:"), "{err}");
        assert!(err.contains("missing its subspace argument"), "{err}");

        let err = parse_workload("skyline AB extra\n")
            .unwrap_err()
            .to_string();
        assert!(err.contains("trailing token"), "{err}");

        let err = parse_workload("count x\n").unwrap_err().to_string();
        assert!(err.contains("bad object id"), "{err}");
    }

    #[test]
    fn repeated_dimension_letters_are_rejected() {
        let err = parse_workload("skyline AAB\n").unwrap_err().to_string();
        assert!(err.starts_with("line 1:"), "{err}");
        assert!(err.contains("must not repeat"), "{err}");
        let err = parse_query_line("member 1 ADA").unwrap_err();
        assert!(err.contains("must not repeat"), "{err}");
        // Distinct letters in any order are fine.
        assert!(parse_query_line("skyline DBA").unwrap().is_some());
    }

    #[test]
    fn oversized_object_ids_are_diagnosed_as_such() {
        let too_big = (ObjId::MAX as u64 + 1).to_string();
        let err = parse_workload(&format!("count {too_big}\n"))
            .unwrap_err()
            .to_string();
        assert!(err.starts_with("line 1:"), "{err}");
        assert!(err.contains("exceeds the maximum"), "{err}");
        // The largest representable id still parses.
        let q = parse_query_line(&format!("count {}", ObjId::MAX)).unwrap();
        assert_eq!(q, Some(Query::Count(ObjId::MAX)));
        // Garbage stays a plain parse diagnostic.
        let err = parse_query_line("count -3").unwrap_err();
        assert!(err.contains("non-negative integer"), "{err}");
    }
}
