//! The resident serving daemon behind `skycube serve`.
//!
//! A one-shot `skycube query` process pays cube load, lazy [`CubeIndex`]
//! build, and cache warm-up on every invocation, then throws the warm state
//! away. A [`Daemon`] keeps all of it resident across requests: one
//! [`StellarEngine`] (dataset + cube + serving index + lattice memo), one
//! shared [`SubspaceCache`] synced through a [`GenerationGate`], one
//! [`RouteTuner`] feeding the online route autotuner, and a pool of warm
//! [`IndexScratch`] buffers. Clients speak a line protocol over stdin or a
//! Unix socket; concurrent connections multiplex over the same warm state
//! behind an `RwLock` (many readers serve queries; mutations take the write
//! lock).
//!
//! # Protocol
//!
//! One request per line, one reply line per request (except `stats`):
//!
//! ```text
//! skyline ABD            workload grammar (see crate::parse_workload):
//! skyband 2 ABD          skyline / skyband / member / count / top —
//! member 17 ABD          answered with the exact line run_batch prints
//! count 17               ("skyline ABD -> 2 4"), via crate::format_answer
//! top 5
//! insert 3 5 2 9 1       mutate the engine: reply "insert -> id I generation G"
//! delete 17              reply "delete -> id 17 generation G"
//! checkpoint             rewrite the binary cube, truncate the WAL; reply
//!                        "checkpoint -> generation G records N"
//! stats                  multi-line "name value" metrics block, blank-line
//!                        terminated
//! quit                   close this connection
//! shutdown               stop the daemon (all connections, the listener)
//! # ...                  comments and blank lines are ignored
//! ```
//!
//! Consecutive query lines read in one wave are answered as a single batch
//! through [`run_batch_with`], so a pipelining client (write the whole
//! workload, then read) fans out over the daemon's thread pool; control
//! verbs act as barriers so replies stay in request order.
//!
//! # Durability
//!
//! With a WAL attached ([`Daemon::with_wal`], the CLI's `--wal PATH`),
//! every accepted mutation is appended + fsync'd with its generation stamp
//! *before* the engine patches ([`crate::wal`]): the reply line is the
//! durability acknowledgement. `checkpoint` (the verb, or the periodic
//! `--checkpoint-every N` policy) rewrites the rows + binary cube and
//! truncates the log, so restart cost stays bounded.
//!
//! # Admission control
//!
//! When a per-query deadline is configured, the daemon sheds rather than
//! queues: a wave is rejected with [`ServeError::ResourceExhausted`] when
//! the projected queue wait — Σ over verbs of `in-flight × that verb's
//! observed service time` (per-verb EWMAs of per-query nanoseconds, so a
//! cheap `count` burst is not shed because an expensive `skyband` is in
//! flight) — already exceeds the deadline. Work that would blow its
//! budget waiting is refused up front, and the shed is counted in the
//! metrics (`shed_total`).
//!
//! # Connection handling
//!
//! [`Daemon::serve_bound`] runs a bounded worker pool ([`crate::pool`]):
//! fixed workers drain a bounded accept queue fed by the Unix-socket
//! and/or TCP listeners; a full queue sheds the connection with a
//! `ResourceExhausted` reply instead of queueing unboundedly. Every pooled
//! connection has send/recv deadlines, idle connections are reaped, and
//! `shutdown` drains gracefully: listeners stop accepting, in-flight
//! batches flush, queued-but-unserved connections get an explicit
//! draining reply, and the WAL is fsync'd on the way out.

use crate::batch::{format_answer, run_batch_with, BatchOptions, BatchOutcome};
use crate::cache::{GenerationGate, SubspaceCache};
use crate::error::ServeError;
use crate::pool::{PoolConfig, PoolStream, WorkerPool};
use crate::source::{lock_recover, IndexStats, IndexedCubeSource};
use crate::tuner::RouteTuner;
use crate::wal::Wal;
use crate::workload::{parse_query_line, Query};
use crate::CachedSource;
use skycube_parallel::Parallelism;
use skycube_stellar::{CubeIndex, IndexScratch, MergeRoute, RouteTable, StellarEngine};
use skycube_types::{ObjId, Value};
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// The admission verb classes, in metric order: each gets its own
/// service-time EWMA so mixed workloads shed precisely.
pub const VERBS: [&str; 5] = ["skyline", "skyband", "member", "count", "top"];

fn verb_index(q: &Query) -> usize {
    match q {
        Query::Skyline(_) => 0,
        Query::Skyband(..) => 1,
        Query::Member(..) => 2,
        Query::Count(_) => 3,
        Query::Top(_) => 4,
    }
}

/// Per-verb query counts for one wave.
fn verb_counts(queries: &[Query]) -> [u64; 5] {
    let mut counts = [0u64; 5];
    for q in queries {
        counts[verb_index(q)] += 1;
    }
    counts
}

/// Configuration for a [`Daemon`].
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Capacity (entries) of the shared subspace→skyline cache.
    pub cache_capacity: usize,
    /// Optional byte budget for the cache (admission control on inserts).
    pub cache_bytes: Option<usize>,
    /// Threads each request wave fans out over.
    pub threads: Parallelism,
    /// Per-query deadline; also arms the shed-don't-queue admission check.
    pub deadline: Option<Duration>,
    /// Run the online route autotuner (`--no-autotune` clears it).
    pub autotune: bool,
    /// A previously learned route table (the tuner sidecar restore path):
    /// installed on the serving index and, when autotuning, seeded as the
    /// tuner's incumbent. Counted as `tuner_restored` in the metrics.
    pub route_table: Option<RouteTable>,
    /// Fault plan injected into every wave's source stack (tests/CI only).
    #[cfg(feature = "faults")]
    pub plan: crate::faults::FaultPlan,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            cache_capacity: 256,
            cache_bytes: None,
            threads: Parallelism::available(),
            deadline: None,
            autotune: true,
            route_table: None,
            #[cfg(feature = "faults")]
            plan: crate::faults::FaultPlan::default(),
        }
    }
}

/// Why [`Daemon::serve_connection`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectionEnd {
    /// The peer closed its side of the stream.
    Eof,
    /// The peer sent `quit`: this connection is done, the daemon lives on.
    Quit,
    /// The peer sent `shutdown`: the whole daemon is stopping.
    Shutdown,
    /// The daemon reaped the connection: idle past the idle timeout, or a
    /// read/write stalled past the per-connection I/O deadline.
    Reaped,
}

/// Shed-don't-queue admission control with per-verb service-time
/// estimates: each verb class keeps its own in-flight count and EWMA of
/// per-query nanoseconds, and a wave is refused when the projected queue
/// wait — Σ over verbs of `in-flight × ewma` — already exceeds the
/// configured deadline. Per-verb estimates make mixed workloads shed
/// precisely: a burst of cheap `count` probes is not refused just because
/// one expensive `skyband` is in flight, and vice versa the skyband's real
/// cost is charged when projecting its queue.
#[derive(Debug, Default)]
struct Admission {
    inflight: [AtomicU64; 5],
    ewma_ns: [AtomicU64; 5],
    /// Verb-blind fallback EWMA, used to project verbs not yet observed.
    overall_ewma_ns: AtomicU64,
    shed: AtomicU64,
}

impl Admission {
    /// Admit a wave (incrementing the per-verb in-flight counts), or
    /// refuse it with the structured shed error.
    fn admit(&self, counts: &[u64; 5], deadline: Option<Duration>) -> Result<(), ServeError> {
        let total: u64 = counts.iter().sum();
        if let Some(d) = deadline {
            let overall = self.overall_ewma_ns.load(Ordering::Relaxed);
            let mut projected = 0u128;
            let mut known = false;
            for (inflight, ewma_ns) in self.inflight.iter().zip(&self.ewma_ns) {
                let depth = inflight.load(Ordering::Relaxed);
                if depth == 0 {
                    continue;
                }
                let ewma = match ewma_ns.load(Ordering::Relaxed) {
                    0 => overall,
                    e => e,
                };
                if ewma > 0 {
                    projected += u128::from(depth) * u128::from(ewma);
                    known = true;
                }
            }
            if known && projected > d.as_nanos() {
                self.shed.fetch_add(total, Ordering::Relaxed);
                return Err(ServeError::ResourceExhausted(format!(
                    "admission shed: projected queue wait {} ns across in-flight verbs \
                     exceeds the {} ms deadline; not queueing past the budget",
                    projected,
                    d.as_millis()
                )));
            }
        }
        for (&count, inflight) in counts.iter().zip(&self.inflight) {
            if count > 0 {
                inflight.fetch_add(count, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Retire an admitted wave: decrement in-flight and fold its service
    /// time into the per-verb EWMAs (new = 7/8 old + 1/8 sample). The
    /// wave's wall time is apportioned across its verbs proportionally to
    /// their current cost estimates — a wave is one `run_batch_with` call,
    /// so per-verb walls are not observable directly.
    fn done(&self, counts: &[u64; 5], wave_nanos: u64) {
        let total: u64 = counts.iter().sum();
        for (&count, inflight) in counts.iter().zip(&self.inflight) {
            if count > 0 {
                inflight.fetch_sub(count, Ordering::Relaxed);
            }
        }
        if total == 0 {
            return;
        }
        let overall_sample = wave_nanos / total;
        let fold = |old: u64, sample: u64| {
            if old == 0 {
                sample
            } else {
                (7 * old + sample) / 8
            }
        };
        let overall_old = self.overall_ewma_ns.load(Ordering::Relaxed);
        self.overall_ewma_ns
            .store(fold(overall_old, overall_sample), Ordering::Relaxed);
        // Apportion the wave: weight each verb by its current estimate
        // (the overall EWMA when unobserved), charge it its share.
        let mut weights = [0u128; 5];
        let mut denom = 0u128;
        for ((&count, ewma_ns), weight) in counts.iter().zip(&self.ewma_ns).zip(&mut weights) {
            if count == 0 {
                continue;
            }
            let est = match ewma_ns.load(Ordering::Relaxed) {
                0 => overall_sample.max(1),
                e => e,
            };
            *weight = u128::from(est);
            denom += u128::from(count) * u128::from(est);
        }
        for ((&count, ewma_ns), &weight) in counts.iter().zip(&self.ewma_ns).zip(&weights) {
            if count == 0 {
                continue;
            }
            let sample = (u128::from(wave_nanos) * weight)
                .checked_div(denom)
                .map_or(overall_sample, |s| s as u64);
            let old = ewma_ns.load(Ordering::Relaxed);
            ewma_ns.store(fold(old, sample), Ordering::Relaxed);
        }
    }
}

/// One scrape of the daemon-level counters (the cache, index, and tuner
/// keep their own; [`Daemon::metrics_text`] renders all of them together).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DaemonMetrics {
    /// Engine generation currently served.
    pub generation: u64,
    /// Connections accepted (stdin counts as one).
    pub connections: u64,
    /// Query waves executed (one wave = one `run_batch_with` call).
    pub waves: u64,
    /// Queries answered (including errored ones).
    pub queries: u64,
    /// Queries that returned an error.
    pub errors: u64,
    /// Queries refused by admission control.
    pub shed: u64,
    /// Queries currently in flight.
    pub inflight: u64,
    /// EWMA of per-query service nanoseconds (all verbs folded together).
    pub service_ewma_ns: u64,
    /// Per-verb service EWMAs, in [`VERBS`] order.
    pub verb_ewma_ns: [u64; 5],
    /// Successful engine inserts.
    pub inserts: u64,
    /// Successful engine deletes.
    pub deletes: u64,
    /// Seconds since the daemon was constructed.
    pub uptime_seconds: u64,
    /// Records currently in the WAL (0 when no WAL is attached).
    pub wal_records: u64,
    /// Records replayed from the WAL at startup.
    pub wal_replayed: u64,
    /// Checkpoints taken (verb or periodic policy).
    pub checkpoints: u64,
    /// Connections currently waiting in the worker pool's accept queue.
    pub pool_depth: u64,
    /// Connections shed because the accept queue was full.
    pub pool_shed: u64,
    /// Connections reaped for idling or stalling past their deadlines.
    pub connections_reaped: u64,
    /// 1 when a persisted route table was restored at startup.
    pub tuner_restored: u64,
}

/// The durability state guarded by one mutex: the log itself plus the
/// periodic-checkpoint policy. Locked *after* the engine write lock.
struct WalState {
    wal: Wal,
    checkpoint_every: Option<u64>,
    since_checkpoint: u64,
}

/// The resident serving daemon. See the module docs for the protocol.
pub struct Daemon {
    engine: RwLock<StellarEngine>,
    cache: Arc<SubspaceCache>,
    gate: GenerationGate,
    tuner: Option<Arc<RouteTuner>>,
    scratches: Mutex<Vec<IndexScratch>>,
    index_totals: Mutex<IndexStats>,
    admission: Admission,
    threads: Parallelism,
    deadline: Option<Duration>,
    shutdown: AtomicBool,
    start: Instant,
    wal: Option<Mutex<WalState>>,
    pool: OnceLock<Arc<WorkerPool>>,
    connections: AtomicU64,
    waves: AtomicU64,
    queries: AtomicU64,
    errors: AtomicU64,
    inserts: AtomicU64,
    deletes: AtomicU64,
    wal_replayed: AtomicU64,
    checkpoints: AtomicU64,
    pool_shed: AtomicU64,
    reaped: AtomicU64,
    tuner_restored: AtomicU64,
    #[cfg(feature = "faults")]
    plan: crate::faults::FaultPlan,
}

impl Daemon {
    /// Wrap an engine in a daemon, forcing the serving index so the first
    /// request finds everything warm. A restored route table
    /// ([`DaemonConfig::route_table`]) is installed on the index before the
    /// first query and seeds the tuner's incumbent.
    pub fn new(engine: StellarEngine, config: DaemonConfig) -> Self {
        engine.cube().index();
        if let Some(table) = config.route_table {
            engine.cube().index().set_route_table(table);
        }
        let cache = match config.cache_bytes {
            Some(bytes) => SubspaceCache::with_byte_budget(config.cache_capacity, bytes),
            None => SubspaceCache::new(config.cache_capacity),
        };
        let gate = GenerationGate::new(engine.generation());
        let tuner = config.autotune.then(|| {
            Arc::new(match config.route_table {
                Some(table) => RouteTuner::with_table(table),
                None => RouteTuner::new(),
            })
        });
        Daemon {
            engine: RwLock::new(engine),
            cache: Arc::new(cache),
            gate,
            tuner,
            scratches: Mutex::new(Vec::new()),
            index_totals: Mutex::new(IndexStats::default()),
            admission: Admission::default(),
            threads: config.threads,
            deadline: config.deadline,
            shutdown: AtomicBool::new(false),
            start: Instant::now(),
            wal: None,
            pool: OnceLock::new(),
            connections: AtomicU64::new(0),
            waves: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
            wal_replayed: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            pool_shed: AtomicU64::new(0),
            reaped: AtomicU64::new(0),
            tuner_restored: AtomicU64::new(u64::from(config.route_table.is_some())),
            #[cfg(feature = "faults")]
            plan: config.plan,
        }
    }

    /// Attach a write-ahead log: every accepted mutation is appended and
    /// fsync'd *before* the engine patches. `replayed` is how many records
    /// startup recovery replayed into the engine (surfaced as the
    /// `wal_replayed` metric); `checkpoint_every` arms the periodic
    /// checkpoint policy (every N accepted mutations).
    pub fn with_wal(mut self, wal: Wal, replayed: u64, checkpoint_every: Option<u64>) -> Self {
        self.wal_replayed.store(replayed, Ordering::Relaxed);
        self.wal = Some(Mutex::new(WalState {
            wal,
            checkpoint_every,
            since_checkpoint: 0,
        }));
        self
    }

    /// The route tuner, when autotuning is on.
    pub fn tuner(&self) -> Option<&Arc<RouteTuner>> {
        self.tuner.as_ref()
    }

    /// Ask every connection loop and listener to wind down.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Whether a shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Engine mutations are transactional (validate, then swap whole
    /// structures), so an engine behind a poisoned lock is still coherent.
    fn engine_read(&self) -> std::sync::RwLockReadGuard<'_, StellarEngine> {
        self.engine.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn engine_write(&self) -> std::sync::RwLockWriteGuard<'_, StellarEngine> {
        self.engine.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Answer one wave of queries against the warm state. Concurrent
    /// callers share the engine read lock, the cache, the tuner, and the
    /// scratch pool; answers come back in input order.
    pub fn serve_wave(&self, queries: &[Query]) -> BatchOutcome {
        self.waves.fetch_add(1, Ordering::Relaxed);
        self.queries
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        let counts = verb_counts(queries);
        if let Err(shed) = self.admission.admit(&counts, self.deadline) {
            self.errors
                .fetch_add(queries.len() as u64, Ordering::Relaxed);
            return BatchOutcome {
                answers: queries.iter().map(|_| Err(shed.clone())).collect(),
                stats: crate::QueryStats {
                    queries: queries.len(),
                    errors: queries.len(),
                    ..Default::default()
                },
            };
        }
        let start = Instant::now();
        let outcome = self.run_admitted_wave(queries);
        self.admission
            .done(&counts, start.elapsed().as_nanos() as u64);
        self.errors
            .fetch_add(outcome.stats.errors as u64, Ordering::Relaxed);
        outcome
    }

    /// The post-admission wave: sync the cache to the engine generation,
    /// rebuild the request-scoped source stack around the resident state,
    /// run the batch, then return the warm scratches and fold the index
    /// deltas into the daemon totals.
    fn run_admitted_wave(&self, queries: &[Query]) -> BatchOutcome {
        let engine = self.engine_read();
        let generation = engine.generation();
        self.gate.sync(generation, engine.last_delta(), &self.cache);
        let source = match &self.tuner {
            Some(t) => IndexedCubeSource::with_tuner(engine.cube(), Arc::clone(t)),
            None => IndexedCubeSource::new(engine.cube()),
        };
        source.adopt_scratches(std::mem::take(&mut *lock_recover(&self.scratches)));
        let cached = CachedSource::with_shared(source, Arc::clone(&self.cache));
        let options = BatchOptions {
            deadline: self.deadline,
            generation: Some(generation),
        };
        // The cube holds only the k = 1 layer, so a wave containing a
        // k ≥ 2 skyband gets a dataset-backed fallback rung (the engine
        // owns its rows; the clone is paid only by such waves). Everything
        // else serves straight from the warm indexed stack.
        let needs_rows = queries
            .iter()
            .any(|q| matches!(q, Query::Skyband(k, _) if *k >= 2));
        let dataset = needs_rows.then(|| engine.dataset());
        let direct = dataset.as_ref().map(crate::DirectSource::new);
        #[cfg(feature = "faults")]
        let faulty = self
            .plan
            .is_active()
            .then(|| crate::faults::FaultySource::new(&cached, self.plan));
        #[cfg(feature = "faults")]
        let primary: &dyn crate::SkylineSource = match &faulty {
            Some(f) => f,
            None => &cached,
        };
        #[cfg(not(feature = "faults"))]
        let primary: &dyn crate::SkylineSource = &cached;
        let outcome = match &direct {
            Some(d) => {
                let ladder = crate::FallbackSource::new(primary).then(d);
                run_batch_with(&ladder, queries, self.threads, &options)
            }
            None => run_batch_with(primary, queries, self.threads, &options),
        };
        *lock_recover(&self.scratches) = cached.inner().take_scratches();
        if let Some(delta) = outcome.stats.index {
            lock_recover(&self.index_totals).accumulate(&delta);
        }
        outcome
    }

    /// [`Self::serve_wave`] rendered to protocol reply lines, one per
    /// query, via [`format_answer`] — byte-identical to what `skycube
    /// query` prints for the same workload.
    pub fn serve_queries(&self, queries: &[Query]) -> Vec<String> {
        let outcome = self.serve_wave(queries);
        queries
            .iter()
            .zip(&outcome.answers)
            .map(|(q, a)| format_answer(q, a))
            .collect()
    }

    /// Insert a row (write lock): returns the new object id and the bumped
    /// generation. With a WAL attached the record is appended and fsync'd
    /// *before* the engine patches — the reply is the durability ack. The
    /// next wave's gate sync patches or clears the cache.
    pub fn insert(&self, row: Vec<Value>) -> Result<(ObjId, u64), ServeError> {
        let mut engine = self.engine_write();
        // Validate before logging: a rejected row must not reach the WAL.
        if row.len() != engine.dims() {
            return Err(ServeError::from(skycube_types::Error::RowLengthMismatch {
                row: engine.len(),
                expected: engine.dims(),
                actual: row.len(),
            }));
        }
        self.log_mutation(|state| state.wal.append_insert(&row))?;
        let id = engine
            .insert(row)
            .map_err(|e| ServeError::Internal(e.to_string()))?;
        self.inserts.fetch_add(1, Ordering::Relaxed);
        let generation = engine.generation();
        drop(engine);
        self.maybe_checkpoint();
        Ok((id, generation))
    }

    /// Delete an object (write lock): returns the bumped generation. The
    /// WAL record (when attached) is durable before the engine patches.
    pub fn delete(&self, id: ObjId) -> Result<u64, ServeError> {
        let mut engine = self.engine_write();
        if (id as usize) >= engine.len() {
            return Err(ServeError::from(skycube_types::Error::NoSuchObject {
                id,
                len: engine.len(),
            }));
        }
        self.log_mutation(|state| state.wal.append_delete(id))?;
        engine.delete(id).map_err(ServeError::from)?;
        self.deletes.fetch_add(1, Ordering::Relaxed);
        let generation = engine.generation();
        drop(engine);
        self.maybe_checkpoint();
        Ok(generation)
    }

    /// Append one mutation record to the WAL (no-op without one). The
    /// `kill-mid-mutation` fault aborts the process right after the record
    /// is durable and before the engine patches — the crash point the
    /// recovery contract must survive.
    fn log_mutation(
        &self,
        append: impl FnOnce(&mut WalState) -> skycube_types::Result<u64>,
    ) -> Result<(), ServeError> {
        let Some(wal) = &self.wal else {
            return Ok(());
        };
        let mut state = wal.lock().unwrap_or_else(PoisonError::into_inner);
        append(&mut state).map_err(|e| ServeError::Internal(format!("wal append failed: {e}")))?;
        state.since_checkpoint += 1;
        #[cfg(feature = "faults")]
        if let Some(nth) = self.plan.kill_mid_mutation {
            if state.wal.records() >= nth {
                eprintln!(
                    "fault injection: kill-mid-mutation aborting after wal record {}",
                    state.wal.records()
                );
                std::process::abort();
            }
        }
        Ok(())
    }

    /// Whether the periodic checkpoint policy is due, and if so take one.
    fn maybe_checkpoint(&self) {
        let due = match &self.wal {
            Some(wal) => {
                let state = wal.lock().unwrap_or_else(PoisonError::into_inner);
                matches!(state.checkpoint_every, Some(n) if n > 0 && state.since_checkpoint >= n)
            }
            None => false,
        };
        if due {
            if let Err(e) = self.checkpoint() {
                eprintln!("# periodic checkpoint failed (log retained): {e}");
            }
        }
    }

    /// Rewrite the rows + binary cube beside the WAL and truncate the log
    /// (the `checkpoint` verb and the periodic policy). Returns the
    /// checkpointed generation and how many log records were truncated.
    /// Fails cleanly — a failed checkpoint leaves the previous checkpoint
    /// and the full log intact.
    pub fn checkpoint(&self) -> Result<(u64, u64), ServeError> {
        let Some(wal) = &self.wal else {
            return Err(ServeError::Internal(
                "no wal configured (start with --wal PATH)".to_owned(),
            ));
        };
        let engine = self.engine_write();
        let mut state = wal.lock().unwrap_or_else(PoisonError::into_inner);
        let durable = state.wal.next_generation() - 1;
        let truncated = state.wal.records();
        let dataset = engine.dataset();
        crate::wal::write_checkpoint(state.wal.path(), &dataset, engine.cube(), durable)
            .map_err(|e| ServeError::Internal(format!("checkpoint failed: {e}")))?;
        state
            .wal
            .reset(durable)
            .map_err(|e| ServeError::Internal(format!("wal reset failed: {e}")))?;
        state.since_checkpoint = 0;
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok((engine.generation(), truncated))
    }

    /// Flush the WAL to disk (graceful-shutdown hook; no-op without one).
    pub fn sync_wal(&self) {
        if let Some(wal) = &self.wal {
            let mut state = wal.lock().unwrap_or_else(PoisonError::into_inner);
            let _ = state.wal.sync();
        }
    }

    /// Current daemon-level counters.
    pub fn metrics(&self) -> DaemonMetrics {
        let mut verb_ewma_ns = [0u64; 5];
        let mut inflight = 0u64;
        for ((slot, ewma_ns), depth) in verb_ewma_ns
            .iter_mut()
            .zip(&self.admission.ewma_ns)
            .zip(&self.admission.inflight)
        {
            *slot = ewma_ns.load(Ordering::Relaxed);
            inflight += depth.load(Ordering::Relaxed);
        }
        let (wal_records, _) = self.wal_status();
        DaemonMetrics {
            generation: self.engine_read().generation(),
            connections: self.connections.load(Ordering::Relaxed),
            waves: self.waves.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shed: self.admission.shed.load(Ordering::Relaxed),
            inflight,
            service_ewma_ns: self.admission.overall_ewma_ns.load(Ordering::Relaxed),
            verb_ewma_ns,
            inserts: self.inserts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            uptime_seconds: self.start.elapsed().as_secs(),
            wal_records,
            wal_replayed: self.wal_replayed.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            pool_depth: self.pool.get().map_or(0, |p| p.depth()),
            pool_shed: self.pool_shed.load(Ordering::Relaxed),
            connections_reaped: self.reaped.load(Ordering::Relaxed),
            tuner_restored: self.tuner_restored.load(Ordering::Relaxed),
        }
    }

    /// `(records in the WAL, WAL attached)` without holding other locks.
    fn wal_status(&self) -> (u64, bool) {
        match &self.wal {
            Some(wal) => {
                let state = wal.lock().unwrap_or_else(PoisonError::into_inner);
                (state.wal.records(), true)
            }
            None => (0, false),
        }
    }

    /// The scrapeable plain-text metrics block (`name value` per line):
    /// daemon counters, cache counters, cumulative per-route index
    /// counters, the live route table, and — when autotuning — the tuner
    /// counters. This is the `stats` verb's reply and the `--metrics`
    /// dump.
    pub fn metrics_text(&self) -> String {
        let m = self.metrics();
        let cache = self.cache.stats();
        let index = *lock_recover(&self.index_totals);
        let table = self.engine_read().cube().index().route_table();
        let mut out = String::new();
        let mut put = |name: &str, value: u64| {
            let _ = writeln!(out, "{name} {value}");
        };
        put("generation", m.generation);
        put("connections_total", m.connections);
        put("waves_total", m.waves);
        put("queries_total", m.queries);
        put("errors_total", m.errors);
        put("shed_total", m.shed);
        put("inflight", m.inflight);
        put("service_ewma_ns", m.service_ewma_ns);
        for (verb, ewma) in VERBS.iter().zip(m.verb_ewma_ns) {
            put(&format!("service_ewma_ns_{verb}"), ewma);
        }
        put("inserts_total", m.inserts);
        put("deletes_total", m.deletes);
        put("uptime_seconds", m.uptime_seconds);
        put("wal_records", m.wal_records);
        put("wal_replayed", m.wal_replayed);
        put("checkpoints", m.checkpoints);
        put("pool_depth", m.pool_depth);
        put("pool_shed_connections", m.pool_shed);
        put("connections_reaped", m.connections_reaped);
        put("tuner_restored", m.tuner_restored);
        put("cache_hits", cache.hits);
        put("cache_misses", cache.misses);
        put("cache_entries", cache.entries as u64);
        put("cache_capacity", cache.capacity as u64);
        put("cache_rejected", cache.rejected);
        put("cache_poison_recoveries", cache.poison_recoveries);
        for route in MergeRoute::ALL {
            let r = index.routes[route.index()];
            put(&format!("route_{}_queries", route.name()), r.queries);
            put(&format!("route_{}_nanos", route.name()), r.nanos);
        }
        put("memo_exact", index.memo_exact);
        put("memo_ancestor", index.memo_ancestor);
        put("memo_miss", index.memo_miss);
        put(
            "route_table_gallop_min_giant",
            u64::from(table.gallop_min_giant),
        );
        put("route_table_gallop_skew", u64::from(table.gallop_skew));
        put("route_table_flat_max_runs", u64::from(table.flat_max_runs));
        put(
            "route_table_heap_short_avg",
            u64::from(table.heap_short_avg),
        );
        if let Some(tuner) = &self.tuner {
            let t = tuner.snapshot();
            put("tuner_observations", t.observations);
            put("tuner_explorations", t.explorations);
            put("tuner_ablation_checks", t.ablation_checks);
            put("tuner_ablation_mismatches", t.ablation_mismatches);
            put("tuner_recalibrations", t.recalibrations);
            put("tuner_promotions", t.promotions);
            put("tuner_shapes", t.shapes as u64);
        }
        out
    }

    /// Drive one connection: read waves of lines, answer them, until EOF,
    /// `quit`, `shutdown`, or a daemon-wide shutdown. Works for stdin and
    /// for an accepted socket stream alike.
    pub fn serve_connection<R: Read, W: Write>(
        &self,
        mut reader: R,
        mut writer: W,
    ) -> std::io::Result<ConnectionEnd> {
        self.connections.fetch_add(1, Ordering::Relaxed);
        let mut pending: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 8192];
        loop {
            if self.is_shutting_down() {
                return Ok(ConnectionEnd::Shutdown);
            }
            let n = reader.read(&mut chunk)?;
            if n == 0 {
                // EOF: a final line without a trailing newline still counts.
                let lines = take_lines(&mut pending, true);
                if let Some(end) = self.process_lines(&lines, &mut writer)? {
                    return Ok(end);
                }
                return Ok(ConnectionEnd::Eof);
            }
            pending.extend_from_slice(&chunk[..n]);
            let lines = take_lines(&mut pending, false);
            if let Some(end) = self.process_lines(&lines, &mut writer)? {
                return Ok(end);
            }
        }
    }

    /// Process one wave of protocol lines: consecutive query lines batch
    /// into a single [`Self::serve_wave`]; control verbs (and parse
    /// errors) flush the batch first so replies stay in request order.
    fn process_lines(
        &self,
        lines: &[String],
        writer: &mut dyn Write,
    ) -> std::io::Result<Option<ConnectionEnd>> {
        let mut batch: Vec<Query> = Vec::new();
        for line in lines {
            let trimmed = line.trim();
            let mut tokens = trimmed.split_whitespace();
            let verb = match tokens.next() {
                None => continue,
                Some(v) if v.starts_with('#') => continue,
                Some(v) => v,
            };
            match verb {
                "stats" => {
                    self.flush_batch(&mut batch, writer)?;
                    writeln!(writer, "{}", self.metrics_text())?;
                }
                "insert" => {
                    self.flush_batch(&mut batch, writer)?;
                    writeln!(writer, "{}", self.handle_insert(tokens))?;
                }
                "delete" => {
                    self.flush_batch(&mut batch, writer)?;
                    writeln!(writer, "{}", self.handle_delete(tokens))?;
                }
                "checkpoint" => {
                    self.flush_batch(&mut batch, writer)?;
                    let reply = match self.checkpoint() {
                        Ok((generation, records)) => {
                            format!("checkpoint -> generation {generation} records {records}")
                        }
                        Err(e) => format!("checkpoint -> error: {e}"),
                    };
                    writeln!(writer, "{reply}")?;
                }
                "quit" => {
                    self.flush_batch(&mut batch, writer)?;
                    writer.flush()?;
                    return Ok(Some(ConnectionEnd::Quit));
                }
                "shutdown" => {
                    self.flush_batch(&mut batch, writer)?;
                    writer.flush()?;
                    self.request_shutdown();
                    return Ok(Some(ConnectionEnd::Shutdown));
                }
                _ => match parse_query_line(trimmed) {
                    Ok(Some(q)) => batch.push(q),
                    Ok(None) => {}
                    Err(message) => {
                        self.flush_batch(&mut batch, writer)?;
                        writeln!(writer, "{trimmed} -> error: {message}")?;
                    }
                },
            }
        }
        self.flush_batch(&mut batch, writer)?;
        writer.flush()?;
        Ok(None)
    }

    fn flush_batch(&self, batch: &mut Vec<Query>, writer: &mut dyn Write) -> std::io::Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        for reply in self.serve_queries(batch) {
            writeln!(writer, "{reply}")?;
        }
        batch.clear();
        Ok(())
    }

    fn handle_insert<'t>(&self, tokens: impl Iterator<Item = &'t str>) -> String {
        let mut row = Vec::new();
        for t in tokens {
            match t.parse::<Value>() {
                Ok(v) => row.push(v),
                Err(_) => return format!("insert -> error: bad value {t:?}"),
            }
        }
        let dims = self.engine_read().cube().dims();
        if row.len() != dims {
            return format!("insert -> error: expected {dims} values, got {}", row.len());
        }
        match self.insert(row) {
            Ok((id, generation)) => format!("insert -> id {id} generation {generation}"),
            Err(e) => format!("insert -> error: {e}"),
        }
    }

    fn handle_delete<'t>(&self, mut tokens: impl Iterator<Item = &'t str>) -> String {
        let id = match tokens.next().map(str::parse::<ObjId>) {
            Some(Ok(id)) => id,
            _ => return "delete -> error: usage: delete <object-id>".to_owned(),
        };
        if tokens.next().is_some() {
            return "delete -> error: usage: delete <object-id>".to_owned();
        }
        match self.delete(id) {
            Ok(generation) => format!("delete -> id {id} generation {generation}"),
            Err(e) => format!("delete -> error: {e}"),
        }
    }

    /// Accept connections on a Unix socket until a shutdown is requested
    /// (the PR 9 entry point, now a thin wrapper over [`Self::serve_bound`]
    /// with the default pool sizing). The socket file is removed on the way
    /// out.
    #[cfg(unix)]
    pub fn listen_unix(self: &Arc<Self>, path: &std::path::Path) -> std::io::Result<()> {
        let _ = std::fs::remove_file(path);
        let listener = std::os::unix::net::UnixListener::bind(path)?;
        self.serve_bound(
            Some((listener, path.to_path_buf())),
            None,
            PoolConfig::default(),
        )
    }

    /// Serve already-bound listeners through the bounded worker pool until
    /// a shutdown is requested: accept loops feed the queue, `workers`
    /// fixed threads drain it, overflow is shed with a
    /// `ResourceExhausted`-formatted reply instead of queueing unboundedly.
    /// On shutdown the listeners stop, in-flight connections observe the
    /// flag at their next tick, queued-but-unserved connections get an
    /// explicit draining reply, the Unix socket file is removed, and the
    /// WAL is fsync'd. The caller binds (so it can report the bound TCP
    /// port before this call blocks).
    #[cfg(unix)]
    pub fn serve_bound(
        self: &Arc<Self>,
        unix: Option<(std::os::unix::net::UnixListener, std::path::PathBuf)>,
        tcp: Option<std::net::TcpListener>,
        config: PoolConfig,
    ) -> std::io::Result<()> {
        let pool = Arc::clone(
            self.pool
                .get_or_init(|| Arc::new(WorkerPool::new(config.backlog))),
        );
        let mut accepters: Vec<std::thread::JoinHandle<std::io::Result<()>>> = Vec::new();
        let unix_path = unix.as_ref().map(|(_, p)| p.clone());
        if let Some((listener, _)) = unix {
            listener.set_nonblocking(true)?;
            let daemon = Arc::clone(self);
            let q = Arc::clone(&pool);
            accepters.push(std::thread::spawn(move || {
                daemon.accept_loop(&q, || match listener.accept() {
                    Ok((s, _)) => {
                        s.set_nonblocking(false)?;
                        Ok(Some(PoolStream::Unix(s)))
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                    Err(e) => Err(e),
                })
            }));
        }
        if let Some(listener) = tcp {
            listener.set_nonblocking(true)?;
            let daemon = Arc::clone(self);
            let q = Arc::clone(&pool);
            accepters.push(std::thread::spawn(move || {
                daemon.accept_loop(&q, || match listener.accept() {
                    Ok((s, _)) => {
                        s.set_nonblocking(false)?;
                        Ok(Some(PoolStream::Tcp(s)))
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                    Err(e) => Err(e),
                })
            }));
        }
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for _ in 0..config.workers.max(1) {
            let daemon = Arc::clone(self);
            let q = Arc::clone(&pool);
            workers.push(std::thread::spawn(move || loop {
                match q.pop(Duration::from_millis(100)) {
                    Some(stream) => {
                        if daemon.is_shutting_down() {
                            daemon.decline(
                                stream,
                                "daemon draining: shutting down before this connection was served",
                            );
                        } else {
                            let _ = daemon.serve_pooled(stream, &config);
                        }
                    }
                    None if daemon.is_shutting_down() => break,
                    None => {}
                }
            }));
        }
        // Accept loops return at shutdown (or on a hard listener error; in
        // that case stop everything so the workers wind down too).
        let mut failure: Option<std::io::Error> = None;
        for a in accepters {
            match a.join() {
                Ok(Err(e)) if failure.is_none() => failure = Some(e),
                _ => {}
            }
        }
        if failure.is_some() {
            self.request_shutdown();
        }
        for w in workers {
            let _ = w.join();
        }
        for stream in pool.drain() {
            self.decline(
                stream,
                "daemon draining: shutting down before this connection was served",
            );
        }
        if let Some(path) = unix_path {
            let _ = std::fs::remove_file(path);
        }
        self.sync_wal();
        match failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Poll `accept` until shutdown, pushing accepted connections into the
    /// pool and shedding them with a reply when the backlog is full.
    #[cfg(unix)]
    fn accept_loop(
        &self,
        pool: &WorkerPool,
        mut accept: impl FnMut() -> std::io::Result<Option<PoolStream>>,
    ) -> std::io::Result<()> {
        while !self.is_shutting_down() {
            match accept()? {
                Some(stream) => {
                    if let Err(stream) = pool.push(stream) {
                        self.pool_shed.fetch_add(1, Ordering::Relaxed);
                        self.decline(
                            stream,
                            "connection backlog full; shedding instead of queueing past the bound",
                        );
                    }
                }
                None => std::thread::sleep(Duration::from_millis(2)),
            }
        }
        Ok(())
    }

    /// Refuse a connection with one `ResourceExhausted`-formatted reply
    /// line (best effort, short write deadline) and drop it.
    fn decline(&self, mut stream: PoolStream, what: &str) {
        let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
        let err = ServeError::ResourceExhausted(what.to_owned());
        let _ = writeln!(stream, "error: {err}");
        let _ = stream.flush();
    }

    /// Drive one pooled connection with deadlines: reads tick so the loop
    /// can observe shutdown, a peer idle past `idle_timeout` (or stalled
    /// mid-line / mid-write past `io_timeout`) is reaped, and the
    /// `slow-client` fault dribbles to exercise exactly that path.
    fn serve_pooled(
        &self,
        mut stream: PoolStream,
        config: &PoolConfig,
    ) -> std::io::Result<ConnectionEnd> {
        self.connections.fetch_add(1, Ordering::Relaxed);
        let tick = Duration::from_millis(100)
            .min(config.io_timeout)
            .min(config.idle_timeout)
            .max(Duration::from_millis(1));
        stream.set_read_timeout(Some(tick))?;
        stream.set_write_timeout(Some(config.io_timeout))?;
        let timed_out = |e: &std::io::Error| {
            matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        };
        let mut pending: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 8192];
        let mut last_data = Instant::now();
        loop {
            if self.is_shutting_down() {
                return Ok(ConnectionEnd::Shutdown);
            }
            let n = match stream.read(&mut chunk) {
                Ok(n) => n,
                Err(e) if timed_out(&e) => {
                    let quiet = last_data.elapsed();
                    let stalled_mid_line = !pending.is_empty() && quiet >= config.io_timeout;
                    if stalled_mid_line || quiet >= config.idle_timeout {
                        self.reaped.fetch_add(1, Ordering::Relaxed);
                        return Ok(ConnectionEnd::Reaped);
                    }
                    continue;
                }
                Err(e) => return Err(e),
            };
            if n == 0 {
                let lines = take_lines(&mut pending, true);
                return match self.process_lines(&lines, &mut stream) {
                    Ok(Some(end)) => Ok(end),
                    Ok(None) => Ok(ConnectionEnd::Eof),
                    Err(e) if timed_out(&e) => {
                        self.reaped.fetch_add(1, Ordering::Relaxed);
                        Ok(ConnectionEnd::Reaped)
                    }
                    Err(e) => Err(e),
                };
            }
            last_data = Instant::now();
            pending.extend_from_slice(&chunk[..n]);
            #[cfg(feature = "faults")]
            if let Some(dally) = self.plan.slow_client {
                std::thread::sleep(dally);
            }
            let lines = take_lines(&mut pending, false);
            match self.process_lines(&lines, &mut stream) {
                Ok(Some(end)) => return Ok(end),
                Ok(None) => {}
                Err(e) if timed_out(&e) => {
                    self.reaped.fetch_add(1, Ordering::Relaxed);
                    return Ok(ConnectionEnd::Reaped);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The index the daemon currently serves from (test hook: lets
    /// assertions inspect the installed route table without a protocol
    /// round trip). The reference is only valid while no mutation swaps
    /// the cube, so callers copy what they need immediately.
    pub fn with_index<T>(&self, f: impl FnOnce(&CubeIndex) -> T) -> T {
        f(self.engine_read().cube().index())
    }
}

/// Split complete `\n`-terminated lines off the front of `pending`
/// (tolerating `\r\n`); with `flush` also take the final unterminated tail.
fn take_lines(pending: &mut Vec<u8>, flush: bool) -> Vec<String> {
    let mut lines = Vec::new();
    while let Some(at) = pending.iter().position(|&b| b == b'\n') {
        let raw: Vec<u8> = pending.drain(..=at).collect();
        lines.push(
            String::from_utf8_lossy(&raw)
                .trim_end_matches(['\n', '\r'])
                .to_string(),
        );
    }
    if flush && !pending.is_empty() {
        let raw = std::mem::take(pending);
        lines.push(String::from_utf8_lossy(&raw).to_string());
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::parse_workload;
    use crate::{run_batch, Answer, IndexedCubeSource};
    use skycube_stellar::compute_cube;
    use skycube_types::running_example;

    fn daemon() -> Daemon {
        let config = DaemonConfig {
            threads: Parallelism::sequential(),
            ..DaemonConfig::default()
        };
        Daemon::new(StellarEngine::new(&running_example()), config)
    }

    /// Run a full protocol exchange against an in-memory "connection".
    fn exchange(daemon: &Daemon, input: &str) -> (String, ConnectionEnd) {
        let mut out = Vec::new();
        let end = daemon
            .serve_connection(input.as_bytes(), &mut out)
            .expect("in-memory I/O cannot fail");
        (String::from_utf8(out).unwrap(), end)
    }

    #[test]
    fn protocol_answers_match_run_batch_byte_for_byte() {
        let d = daemon();
        let workload = "skyline BD\nskyband 1 BD\nmember 4 BD\ncount 4\ntop 2\n";
        let (replies, end) = exchange(&d, workload);
        assert_eq!(end, ConnectionEnd::Eof);
        let ds = running_example();
        let cube = compute_cube(&ds);
        let source = IndexedCubeSource::new(&cube);
        let queries = parse_workload(workload).unwrap();
        let outcome = run_batch(&source, &queries, Parallelism::sequential());
        let expect: String = queries
            .iter()
            .zip(&outcome.answers)
            .map(|(q, a)| format_answer(q, a) + "\n")
            .collect();
        assert_eq!(replies, expect);
    }

    #[test]
    fn control_verbs_barrier_and_classify() {
        let d = daemon();
        let (replies, end) = exchange(
            &d,
            "skyline BD\nquack now\nskyline B\n# a comment\n\nquit\nskyline A\n",
        );
        assert_eq!(end, ConnectionEnd::Quit);
        let lines: Vec<&str> = replies.lines().collect();
        assert_eq!(lines[0], "skyline BD -> 2 4");
        assert!(
            lines[1].starts_with("quack now -> error:"),
            "{:?}",
            lines[1]
        );
        assert_eq!(lines[2], "skyline B -> 2 3 4");
        // Nothing after quit is served.
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn mutations_bump_the_generation_and_refresh_answers() {
        let d = daemon();
        let (before, _) = exchange(&d, "skyline B\n");
        assert_eq!(before, "skyline B -> 2 3 4\n");
        // The new object takes over subspace B outright (B = 0).
        let (reply, _) = exchange(&d, "insert 9 0 11 9\n");
        assert_eq!(reply, "insert -> id 5 generation 1\n");
        let (after, _) = exchange(&d, "skyline B\n");
        assert_eq!(after, "skyline B -> 5\n", "stale answer after insert");
        let (reply, _) = exchange(&d, "delete 5\n");
        assert_eq!(reply, "delete -> id 5 generation 2\n");
        let (restored, _) = exchange(&d, "skyline B\n");
        assert_eq!(restored, "skyline B -> 2 3 4\n");
        let m = d.metrics();
        assert_eq!((m.inserts, m.deletes, m.generation), (1, 1, 2));
    }

    #[test]
    fn malformed_mutations_reply_with_diagnostics() {
        let d = daemon();
        let (r, _) = exchange(&d, "insert 1 2\n");
        assert_eq!(r, "insert -> error: expected 4 values, got 2\n");
        let (r, _) = exchange(&d, "insert a b c d\n");
        assert!(r.starts_with("insert -> error: bad value"), "{r:?}");
        let (r, _) = exchange(&d, "delete nineteen\n");
        assert!(r.contains("usage: delete"), "{r:?}");
        let (r, _) = exchange(&d, "delete 99\n");
        assert!(r.starts_with("delete -> error:"), "{r:?}");
    }

    #[test]
    fn stats_scrape_is_blank_line_terminated_name_value_pairs() {
        let d = daemon();
        let (_, _) = exchange(&d, "skyline BD\nskyline BD\n");
        let (scrape, _) = exchange(&d, "stats\n");
        assert!(scrape.ends_with("\n\n"), "missing blank-line terminator");
        for needle in [
            "generation 0",
            "queries_total 2",
            "shed_total 0",
            "cache_hits 1",
            "cache_misses 1",
            "service_ewma_ns_skyline",
            "service_ewma_ns_top",
            "uptime_seconds",
            "wal_records 0",
            "wal_replayed 0",
            "checkpoints 0",
            "pool_depth 0",
            "pool_shed_connections 0",
            "connections_reaped 0",
            "tuner_restored 0",
            "route_table_flat_max_runs",
            "tuner_observations",
        ] {
            assert!(
                scrape.lines().any(|l| l.starts_with(needle)),
                "missing {needle:?} in:\n{scrape}"
            );
        }
        // Every line of the block body is "name value".
        for line in scrape.trim_end().lines() {
            let mut parts = line.split_whitespace();
            assert!(parts.next().is_some(), "empty metrics line");
            parts
                .next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| panic!("non-numeric metrics line {line:?}"));
            assert_eq!(parts.next(), None, "trailing tokens in {line:?}");
        }
    }

    #[test]
    fn shutdown_verb_stops_the_daemon() {
        let d = daemon();
        let (_, end) = exchange(&d, "shutdown\n");
        assert_eq!(end, ConnectionEnd::Shutdown);
        assert!(d.is_shutting_down());
        // A connection opened after the flag is set winds down immediately.
        let (out, end) = exchange(&d, "skyline BD\n");
        assert_eq!(end, ConnectionEnd::Shutdown);
        assert_eq!(out, "");
    }

    #[test]
    fn warm_state_survives_across_waves() {
        let d = daemon();
        let queries = parse_workload("skyline BD\n").unwrap();
        d.serve_wave(&queries);
        d.serve_wave(&queries);
        let cache = d.cache.stats();
        assert_eq!((cache.hits, cache.misses), (1, 1));
        // The second wave adopted the first wave's scratch buffer.
        assert_eq!(lock_recover(&d.scratches).len(), 1);
        let m = d.metrics();
        assert_eq!((m.waves, m.queries), (2, 2));
        assert!(m.service_ewma_ns > 0);
    }

    #[test]
    fn admission_sheds_when_projected_wait_exceeds_the_deadline() {
        let config = DaemonConfig {
            threads: Parallelism::sequential(),
            deadline: Some(Duration::from_millis(1)),
            ..DaemonConfig::default()
        };
        let d = Daemon::new(StellarEngine::new(&running_example()), config);
        // Seed the queue-depth and service-time signals directly: 4 skyline
        // queries notionally in flight at 1 ms each projects a 4 ms wait.
        d.admission.inflight[0].store(4, Ordering::Relaxed);
        d.admission.ewma_ns[0].store(1_000_000, Ordering::Relaxed);
        let queries = parse_workload("skyline BD\nskyline B\n").unwrap();
        let outcome = d.serve_wave(&queries);
        for a in &outcome.answers {
            let err = a.clone().unwrap_err();
            assert_eq!(err.kind(), "resource-exhausted");
            assert!(err.to_string().contains("admission shed"), "{err}");
        }
        assert_eq!(d.metrics().shed, 2);
        // Clearing the pressure admits the same wave again.
        d.admission.inflight[0].store(0, Ordering::Relaxed);
        let outcome = d.serve_wave(&queries);
        assert_eq!(outcome.answers[0], Ok(Answer::Skyline(vec![2, 4])));
        assert_eq!(d.metrics().shed, 2);
    }

    #[test]
    fn autotuner_is_attached_unless_disabled() {
        assert!(daemon().tuner().is_some());
        let config = DaemonConfig {
            autotune: false,
            threads: Parallelism::sequential(),
            ..DaemonConfig::default()
        };
        let d = Daemon::new(StellarEngine::new(&running_example()), config);
        assert!(d.tuner().is_none());
        let queries = parse_workload("skyline BD\n").unwrap();
        assert_eq!(
            d.serve_wave(&queries).answers[0],
            Ok(Answer::Skyline(vec![2, 4]))
        );
    }

    #[test]
    fn take_lines_frames_waves_and_flushes_tails() {
        let mut pending = b"skyline A\r\nskyline B\nsky".to_vec();
        let lines = take_lines(&mut pending, false);
        assert_eq!(lines, ["skyline A", "skyline B"]);
        assert_eq!(pending, b"sky");
        let lines = take_lines(&mut pending, true);
        assert_eq!(lines, ["sky"]);
        assert!(pending.is_empty());
    }

    #[test]
    fn admission_projects_per_verb_so_cheap_verbs_are_not_shed_by_expensive_ones() {
        let config = DaemonConfig {
            threads: Parallelism::sequential(),
            deadline: Some(Duration::from_millis(1)),
            ..DaemonConfig::default()
        };
        let d = Daemon::new(StellarEngine::new(&running_example()), config);
        // One expensive skyband (5 ms) in flight; counts are cheap (10 µs).
        d.admission.inflight[1].store(1, Ordering::Relaxed);
        d.admission.ewma_ns[1].store(5_000_000, Ordering::Relaxed);
        d.admission.ewma_ns[3].store(10_000, Ordering::Relaxed);
        // A count wave projects only the skyband's wait — still over the
        // 1 ms deadline, so it sheds...
        let counts = verb_counts(&parse_workload("count 1\n").unwrap());
        assert!(d
            .admission
            .admit(&counts, Some(Duration::from_millis(1)))
            .is_err());
        // ...but once the skyband retires, cheap work flows immediately
        // even though the skyband EWMA is still huge.
        d.admission.inflight[1].store(0, Ordering::Relaxed);
        assert!(d
            .admission
            .admit(&counts, Some(Duration::from_millis(1)))
            .is_ok());
        // And the skyband EWMA alone does not poison count's estimate.
        assert_eq!(d.admission.ewma_ns[3].load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn wave_times_fold_into_per_verb_ewmas() {
        let d = daemon();
        let queries = parse_workload("skyline BD\ncount 4\n").unwrap();
        d.serve_wave(&queries);
        let m = d.metrics();
        assert!(m.service_ewma_ns > 0);
        assert!(m.verb_ewma_ns[0] > 0, "skyline ewma unset");
        assert!(m.verb_ewma_ns[3] > 0, "count ewma unset");
        assert_eq!(m.verb_ewma_ns[1], 0, "skyband never ran");
        assert_eq!(m.inflight, 0, "wave not retired");
    }

    fn scratch_dir(name: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("skycube-daemon-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn wal_daemon(dir: &std::path::Path) -> Daemon {
        let config = DaemonConfig {
            threads: Parallelism::sequential(),
            ..DaemonConfig::default()
        };
        let ds = running_example();
        let opened = crate::wal::Wal::open(&dir.join("d.wal"), ds.dims(), 0).unwrap();
        let replayed = opened.records.len() as u64;
        Daemon::new(StellarEngine::new(&ds), config).with_wal(opened.wal, replayed, None)
    }

    #[test]
    fn mutations_are_logged_before_they_apply_and_checkpoint_truncates() {
        let dir = scratch_dir("log-and-checkpoint");
        let d = wal_daemon(&dir);
        let (reply, _) = exchange(&d, "insert 9 0 11 9\ndelete 5\n");
        assert!(reply.contains("insert -> id 5 generation 1"), "{reply}");
        assert!(reply.contains("delete -> id 5 generation 2"), "{reply}");
        assert_eq!(d.metrics().wal_records, 2);
        // Rejected mutations must not reach the log.
        let (reply, _) = exchange(&d, "insert 1 2\ndelete 99\n");
        assert!(reply.contains("error"), "{reply}");
        assert_eq!(d.metrics().wal_records, 2);
        let (reply, _) = exchange(&d, "checkpoint\n");
        assert_eq!(reply, "checkpoint -> generation 2 records 2\n");
        let m = d.metrics();
        assert_eq!((m.wal_records, m.checkpoints), (0, 1));
        // The log replays to the same engine the daemon is serving.
        let rec = crate::wal::recover(
            &dir.join("d.wal"),
            &running_example(),
            skycube_stellar::Stellar::default(),
        )
        .unwrap();
        assert!(rec.from_checkpoint, "checkpoint not picked up");
        assert_eq!(rec.base_generation, 2, "durable generation lost");
        assert_eq!(rec.engine.len(), 5);
        assert_eq!(rec.replayed, 0, "checkpoint left nothing to replay");
    }

    #[test]
    fn checkpoint_without_a_wal_is_a_structured_refusal() {
        let d = daemon();
        let (reply, _) = exchange(&d, "checkpoint\n");
        assert_eq!(
            reply,
            "checkpoint -> error: no wal configured (start with --wal PATH)\n"
        );
    }

    #[test]
    fn periodic_checkpoint_policy_fires_every_n_mutations() {
        let dir = scratch_dir("periodic-checkpoint");
        let ds = running_example();
        let opened = crate::wal::Wal::open(&dir.join("d.wal"), ds.dims(), 0).unwrap();
        let config = DaemonConfig {
            threads: Parallelism::sequential(),
            ..DaemonConfig::default()
        };
        let d = Daemon::new(StellarEngine::new(&ds), config).with_wal(opened.wal, 0, Some(2));
        exchange(&d, "insert 9 0 11 9\n");
        assert_eq!(d.metrics().checkpoints, 0);
        exchange(&d, "insert 8 1 10 8\n");
        let m = d.metrics();
        assert_eq!((m.checkpoints, m.wal_records), (1, 0));
        exchange(&d, "delete 6\n");
        assert_eq!(d.metrics().wal_records, 1, "policy resets after firing");
    }

    #[test]
    fn restored_route_table_is_installed_and_counted() {
        let table = RouteTable {
            gallop_min_giant: 123,
            gallop_skew: 9,
            flat_max_runs: 7,
            heap_short_avg: 5,
        };
        let config = DaemonConfig {
            threads: Parallelism::sequential(),
            route_table: Some(table),
            ..DaemonConfig::default()
        };
        let d = Daemon::new(StellarEngine::new(&running_example()), config);
        assert_eq!(d.metrics().tuner_restored, 1);
        d.with_index(|index| assert_eq!(index.route_table(), table));
        let snapshot = d.tuner().expect("autotune on").snapshot();
        assert_eq!(snapshot.table, table);
    }
}
