//! The resident serving daemon behind `skycube serve`.
//!
//! A one-shot `skycube query` process pays cube load, lazy [`CubeIndex`]
//! build, and cache warm-up on every invocation, then throws the warm state
//! away. A [`Daemon`] keeps all of it resident across requests: one
//! [`StellarEngine`] (dataset + cube + serving index + lattice memo), one
//! shared [`SubspaceCache`] synced through a [`GenerationGate`], one
//! [`RouteTuner`] feeding the online route autotuner, and a pool of warm
//! [`IndexScratch`] buffers. Clients speak a line protocol over stdin or a
//! Unix socket; concurrent connections multiplex over the same warm state
//! behind an `RwLock` (many readers serve queries; mutations take the write
//! lock).
//!
//! # Protocol
//!
//! One request per line, one reply line per request (except `stats`):
//!
//! ```text
//! skyline ABD            workload grammar (see crate::parse_workload):
//! skyband 2 ABD          skyline / skyband / member / count / top —
//! member 17 ABD          answered with the exact line run_batch prints
//! count 17               ("skyline ABD -> 2 4"), via crate::format_answer
//! top 5
//! insert 3 5 2 9 1       mutate the engine: reply "insert -> id I generation G"
//! delete 17              reply "delete -> id 17 generation G"
//! stats                  multi-line "name value" metrics block, blank-line
//!                        terminated
//! quit                   close this connection
//! shutdown               stop the daemon (all connections, the listener)
//! # ...                  comments and blank lines are ignored
//! ```
//!
//! Consecutive query lines read in one wave are answered as a single batch
//! through [`run_batch_with`], so a pipelining client (write the whole
//! workload, then read) fans out over the daemon's thread pool; control
//! verbs act as barriers so replies stay in request order.
//!
//! # Admission control
//!
//! When a per-query deadline is configured, the daemon sheds rather than
//! queues: a wave is rejected with [`ServeError::ResourceExhausted`] when
//! `queue depth × observed service time` (an EWMA of per-query
//! nanoseconds) already exceeds the deadline — work that would blow its
//! budget waiting is refused up front, and the shed is counted in the
//! metrics (`shed_total`).

use crate::batch::{format_answer, run_batch_with, BatchOptions, BatchOutcome};
use crate::cache::{GenerationGate, SubspaceCache};
use crate::error::ServeError;
use crate::source::{lock_recover, IndexStats, IndexedCubeSource};
use crate::tuner::RouteTuner;
use crate::workload::{parse_query_line, Query};
use crate::CachedSource;
use skycube_parallel::Parallelism;
use skycube_stellar::{CubeIndex, IndexScratch, MergeRoute, StellarEngine};
use skycube_types::{ObjId, Value};
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// Configuration for a [`Daemon`].
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Capacity (entries) of the shared subspace→skyline cache.
    pub cache_capacity: usize,
    /// Optional byte budget for the cache (admission control on inserts).
    pub cache_bytes: Option<usize>,
    /// Threads each request wave fans out over.
    pub threads: Parallelism,
    /// Per-query deadline; also arms the shed-don't-queue admission check.
    pub deadline: Option<Duration>,
    /// Run the online route autotuner (`--no-autotune` clears it).
    pub autotune: bool,
    /// Fault plan injected into every wave's source stack (tests/CI only).
    #[cfg(feature = "faults")]
    pub plan: crate::faults::FaultPlan,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            cache_capacity: 256,
            cache_bytes: None,
            threads: Parallelism::available(),
            deadline: None,
            autotune: true,
            #[cfg(feature = "faults")]
            plan: crate::faults::FaultPlan::default(),
        }
    }
}

/// Why [`Daemon::serve_connection`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectionEnd {
    /// The peer closed its side of the stream.
    Eof,
    /// The peer sent `quit`: this connection is done, the daemon lives on.
    Quit,
    /// The peer sent `shutdown`: the whole daemon is stopping.
    Shutdown,
}

/// Shed-don't-queue admission control: track in-flight queries and an EWMA
/// of per-query service nanoseconds; refuse a wave whose projected queue
/// wait (`depth × ewma`) already exceeds the configured deadline.
#[derive(Debug, Default)]
struct Admission {
    inflight: AtomicU64,
    ewma_ns: AtomicU64,
    shed: AtomicU64,
}

impl Admission {
    /// Admit a wave of `queries` queries (incrementing the in-flight
    /// count), or refuse it with the structured shed error.
    fn admit(&self, queries: u64, deadline: Option<Duration>) -> Result<(), ServeError> {
        if let Some(d) = deadline {
            let depth = self.inflight.load(Ordering::Relaxed);
            let ewma = self.ewma_ns.load(Ordering::Relaxed);
            let projected = depth.saturating_mul(ewma);
            if ewma > 0 && projected > d.as_nanos() as u64 {
                self.shed.fetch_add(queries, Ordering::Relaxed);
                return Err(ServeError::ResourceExhausted(format!(
                    "admission shed: {depth} queries in flight × {ewma} ns observed service \
                     time exceeds the {} ms deadline; not queueing past the budget",
                    d.as_millis()
                )));
            }
        }
        self.inflight.fetch_add(queries, Ordering::Relaxed);
        Ok(())
    }

    /// Retire an admitted wave: decrement in-flight and fold its per-query
    /// service time into the EWMA (new = 7/8 old + 1/8 sample).
    fn done(&self, queries: u64, wave_nanos: u64) {
        self.inflight.fetch_sub(queries, Ordering::Relaxed);
        if queries == 0 {
            return;
        }
        let sample = wave_nanos / queries;
        let old = self.ewma_ns.load(Ordering::Relaxed);
        let next = if old == 0 {
            sample
        } else {
            (7 * old + sample) / 8
        };
        self.ewma_ns.store(next, Ordering::Relaxed);
    }
}

/// One scrape of the daemon-level counters (the cache, index, and tuner
/// keep their own; [`Daemon::metrics_text`] renders all of them together).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DaemonMetrics {
    /// Engine generation currently served.
    pub generation: u64,
    /// Connections accepted (stdin counts as one).
    pub connections: u64,
    /// Query waves executed (one wave = one `run_batch_with` call).
    pub waves: u64,
    /// Queries answered (including errored ones).
    pub queries: u64,
    /// Queries that returned an error.
    pub errors: u64,
    /// Queries refused by admission control.
    pub shed: u64,
    /// Queries currently in flight.
    pub inflight: u64,
    /// EWMA of per-query service nanoseconds.
    pub service_ewma_ns: u64,
    /// Successful engine inserts.
    pub inserts: u64,
    /// Successful engine deletes.
    pub deletes: u64,
}

/// The resident serving daemon. See the module docs for the protocol.
pub struct Daemon {
    engine: RwLock<StellarEngine>,
    cache: Arc<SubspaceCache>,
    gate: GenerationGate,
    tuner: Option<Arc<RouteTuner>>,
    scratches: Mutex<Vec<IndexScratch>>,
    index_totals: Mutex<IndexStats>,
    admission: Admission,
    threads: Parallelism,
    deadline: Option<Duration>,
    shutdown: AtomicBool,
    connections: AtomicU64,
    waves: AtomicU64,
    queries: AtomicU64,
    errors: AtomicU64,
    inserts: AtomicU64,
    deletes: AtomicU64,
    #[cfg(feature = "faults")]
    plan: crate::faults::FaultPlan,
}

impl Daemon {
    /// Wrap an engine in a daemon, forcing the serving index so the first
    /// request finds everything warm.
    pub fn new(engine: StellarEngine, config: DaemonConfig) -> Self {
        engine.cube().index();
        let cache = match config.cache_bytes {
            Some(bytes) => SubspaceCache::with_byte_budget(config.cache_capacity, bytes),
            None => SubspaceCache::new(config.cache_capacity),
        };
        let gate = GenerationGate::new(engine.generation());
        Daemon {
            engine: RwLock::new(engine),
            cache: Arc::new(cache),
            gate,
            tuner: config.autotune.then(|| Arc::new(RouteTuner::new())),
            scratches: Mutex::new(Vec::new()),
            index_totals: Mutex::new(IndexStats::default()),
            admission: Admission::default(),
            threads: config.threads,
            deadline: config.deadline,
            shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            waves: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
            #[cfg(feature = "faults")]
            plan: config.plan,
        }
    }

    /// The route tuner, when autotuning is on.
    pub fn tuner(&self) -> Option<&Arc<RouteTuner>> {
        self.tuner.as_ref()
    }

    /// Ask every connection loop and listener to wind down.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Whether a shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Engine mutations are transactional (validate, then swap whole
    /// structures), so an engine behind a poisoned lock is still coherent.
    fn engine_read(&self) -> std::sync::RwLockReadGuard<'_, StellarEngine> {
        self.engine.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn engine_write(&self) -> std::sync::RwLockWriteGuard<'_, StellarEngine> {
        self.engine.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Answer one wave of queries against the warm state. Concurrent
    /// callers share the engine read lock, the cache, the tuner, and the
    /// scratch pool; answers come back in input order.
    pub fn serve_wave(&self, queries: &[Query]) -> BatchOutcome {
        self.waves.fetch_add(1, Ordering::Relaxed);
        self.queries
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        if let Err(shed) = self.admission.admit(queries.len() as u64, self.deadline) {
            self.errors
                .fetch_add(queries.len() as u64, Ordering::Relaxed);
            return BatchOutcome {
                answers: queries.iter().map(|_| Err(shed.clone())).collect(),
                stats: crate::QueryStats {
                    queries: queries.len(),
                    errors: queries.len(),
                    ..Default::default()
                },
            };
        }
        let start = Instant::now();
        let outcome = self.run_admitted_wave(queries);
        self.admission
            .done(queries.len() as u64, start.elapsed().as_nanos() as u64);
        self.errors
            .fetch_add(outcome.stats.errors as u64, Ordering::Relaxed);
        outcome
    }

    /// The post-admission wave: sync the cache to the engine generation,
    /// rebuild the request-scoped source stack around the resident state,
    /// run the batch, then return the warm scratches and fold the index
    /// deltas into the daemon totals.
    fn run_admitted_wave(&self, queries: &[Query]) -> BatchOutcome {
        let engine = self.engine_read();
        let generation = engine.generation();
        self.gate.sync(generation, engine.last_delta(), &self.cache);
        let source = match &self.tuner {
            Some(t) => IndexedCubeSource::with_tuner(engine.cube(), Arc::clone(t)),
            None => IndexedCubeSource::new(engine.cube()),
        };
        source.adopt_scratches(std::mem::take(&mut *lock_recover(&self.scratches)));
        let cached = CachedSource::with_shared(source, Arc::clone(&self.cache));
        let options = BatchOptions {
            deadline: self.deadline,
            generation: Some(generation),
        };
        // The cube holds only the k = 1 layer, so a wave containing a
        // k ≥ 2 skyband gets a dataset-backed fallback rung (the engine
        // owns its rows; the clone is paid only by such waves). Everything
        // else serves straight from the warm indexed stack.
        let needs_rows = queries
            .iter()
            .any(|q| matches!(q, Query::Skyband(k, _) if *k >= 2));
        let dataset = needs_rows.then(|| engine.dataset());
        let direct = dataset.as_ref().map(crate::DirectSource::new);
        #[cfg(feature = "faults")]
        let faulty = self
            .plan
            .is_active()
            .then(|| crate::faults::FaultySource::new(&cached, self.plan));
        #[cfg(feature = "faults")]
        let primary: &dyn crate::SkylineSource = match &faulty {
            Some(f) => f,
            None => &cached,
        };
        #[cfg(not(feature = "faults"))]
        let primary: &dyn crate::SkylineSource = &cached;
        let outcome = match &direct {
            Some(d) => {
                let ladder = crate::FallbackSource::new(primary).then(d);
                run_batch_with(&ladder, queries, self.threads, &options)
            }
            None => run_batch_with(primary, queries, self.threads, &options),
        };
        *lock_recover(&self.scratches) = cached.inner().take_scratches();
        if let Some(delta) = outcome.stats.index {
            lock_recover(&self.index_totals).accumulate(&delta);
        }
        outcome
    }

    /// [`Self::serve_wave`] rendered to protocol reply lines, one per
    /// query, via [`format_answer`] — byte-identical to what `skycube
    /// query` prints for the same workload.
    pub fn serve_queries(&self, queries: &[Query]) -> Vec<String> {
        let outcome = self.serve_wave(queries);
        queries
            .iter()
            .zip(&outcome.answers)
            .map(|(q, a)| format_answer(q, a))
            .collect()
    }

    /// Insert a row (write lock): returns the new object id and the bumped
    /// generation. The next wave's gate sync patches or clears the cache.
    pub fn insert(&self, row: Vec<Value>) -> Result<(ObjId, u64), ServeError> {
        let mut engine = self.engine_write();
        let id = engine
            .insert(row)
            .map_err(|e| ServeError::Internal(e.to_string()))?;
        self.inserts.fetch_add(1, Ordering::Relaxed);
        Ok((id, engine.generation()))
    }

    /// Delete an object (write lock): returns the bumped generation.
    pub fn delete(&self, id: ObjId) -> Result<u64, ServeError> {
        let mut engine = self.engine_write();
        engine.delete(id).map_err(ServeError::from)?;
        self.deletes.fetch_add(1, Ordering::Relaxed);
        Ok(engine.generation())
    }

    /// Current daemon-level counters.
    pub fn metrics(&self) -> DaemonMetrics {
        DaemonMetrics {
            generation: self.engine_read().generation(),
            connections: self.connections.load(Ordering::Relaxed),
            waves: self.waves.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shed: self.admission.shed.load(Ordering::Relaxed),
            inflight: self.admission.inflight.load(Ordering::Relaxed),
            service_ewma_ns: self.admission.ewma_ns.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
        }
    }

    /// The scrapeable plain-text metrics block (`name value` per line):
    /// daemon counters, cache counters, cumulative per-route index
    /// counters, the live route table, and — when autotuning — the tuner
    /// counters. This is the `stats` verb's reply and the `--metrics`
    /// dump.
    pub fn metrics_text(&self) -> String {
        let m = self.metrics();
        let cache = self.cache.stats();
        let index = *lock_recover(&self.index_totals);
        let table = self.engine_read().cube().index().route_table();
        let mut out = String::new();
        let mut put = |name: &str, value: u64| {
            let _ = writeln!(out, "{name} {value}");
        };
        put("generation", m.generation);
        put("connections_total", m.connections);
        put("waves_total", m.waves);
        put("queries_total", m.queries);
        put("errors_total", m.errors);
        put("shed_total", m.shed);
        put("inflight", m.inflight);
        put("service_ewma_ns", m.service_ewma_ns);
        put("inserts_total", m.inserts);
        put("deletes_total", m.deletes);
        put("cache_hits", cache.hits);
        put("cache_misses", cache.misses);
        put("cache_entries", cache.entries as u64);
        put("cache_capacity", cache.capacity as u64);
        put("cache_rejected", cache.rejected);
        put("cache_poison_recoveries", cache.poison_recoveries);
        for route in MergeRoute::ALL {
            let r = index.routes[route.index()];
            put(&format!("route_{}_queries", route.name()), r.queries);
            put(&format!("route_{}_nanos", route.name()), r.nanos);
        }
        put("memo_exact", index.memo_exact);
        put("memo_ancestor", index.memo_ancestor);
        put("memo_miss", index.memo_miss);
        put(
            "route_table_gallop_min_giant",
            u64::from(table.gallop_min_giant),
        );
        put("route_table_gallop_skew", u64::from(table.gallop_skew));
        put("route_table_flat_max_runs", u64::from(table.flat_max_runs));
        put(
            "route_table_heap_short_avg",
            u64::from(table.heap_short_avg),
        );
        if let Some(tuner) = &self.tuner {
            let t = tuner.snapshot();
            put("tuner_observations", t.observations);
            put("tuner_explorations", t.explorations);
            put("tuner_ablation_checks", t.ablation_checks);
            put("tuner_ablation_mismatches", t.ablation_mismatches);
            put("tuner_recalibrations", t.recalibrations);
            put("tuner_promotions", t.promotions);
            put("tuner_shapes", t.shapes as u64);
        }
        out
    }

    /// Drive one connection: read waves of lines, answer them, until EOF,
    /// `quit`, `shutdown`, or a daemon-wide shutdown. Works for stdin and
    /// for an accepted socket stream alike.
    pub fn serve_connection<R: Read, W: Write>(
        &self,
        mut reader: R,
        mut writer: W,
    ) -> std::io::Result<ConnectionEnd> {
        self.connections.fetch_add(1, Ordering::Relaxed);
        let mut pending: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 8192];
        loop {
            if self.is_shutting_down() {
                return Ok(ConnectionEnd::Shutdown);
            }
            let n = reader.read(&mut chunk)?;
            if n == 0 {
                // EOF: a final line without a trailing newline still counts.
                let lines = take_lines(&mut pending, true);
                if let Some(end) = self.process_lines(&lines, &mut writer)? {
                    return Ok(end);
                }
                return Ok(ConnectionEnd::Eof);
            }
            pending.extend_from_slice(&chunk[..n]);
            let lines = take_lines(&mut pending, false);
            if let Some(end) = self.process_lines(&lines, &mut writer)? {
                return Ok(end);
            }
        }
    }

    /// Process one wave of protocol lines: consecutive query lines batch
    /// into a single [`Self::serve_wave`]; control verbs (and parse
    /// errors) flush the batch first so replies stay in request order.
    fn process_lines(
        &self,
        lines: &[String],
        writer: &mut dyn Write,
    ) -> std::io::Result<Option<ConnectionEnd>> {
        let mut batch: Vec<Query> = Vec::new();
        for line in lines {
            let trimmed = line.trim();
            let mut tokens = trimmed.split_whitespace();
            let verb = match tokens.next() {
                None => continue,
                Some(v) if v.starts_with('#') => continue,
                Some(v) => v,
            };
            match verb {
                "stats" => {
                    self.flush_batch(&mut batch, writer)?;
                    writeln!(writer, "{}", self.metrics_text())?;
                }
                "insert" => {
                    self.flush_batch(&mut batch, writer)?;
                    writeln!(writer, "{}", self.handle_insert(tokens))?;
                }
                "delete" => {
                    self.flush_batch(&mut batch, writer)?;
                    writeln!(writer, "{}", self.handle_delete(tokens))?;
                }
                "quit" => {
                    self.flush_batch(&mut batch, writer)?;
                    writer.flush()?;
                    return Ok(Some(ConnectionEnd::Quit));
                }
                "shutdown" => {
                    self.flush_batch(&mut batch, writer)?;
                    writer.flush()?;
                    self.request_shutdown();
                    return Ok(Some(ConnectionEnd::Shutdown));
                }
                _ => match parse_query_line(trimmed) {
                    Ok(Some(q)) => batch.push(q),
                    Ok(None) => {}
                    Err(message) => {
                        self.flush_batch(&mut batch, writer)?;
                        writeln!(writer, "{trimmed} -> error: {message}")?;
                    }
                },
            }
        }
        self.flush_batch(&mut batch, writer)?;
        writer.flush()?;
        Ok(None)
    }

    fn flush_batch(&self, batch: &mut Vec<Query>, writer: &mut dyn Write) -> std::io::Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        for reply in self.serve_queries(batch) {
            writeln!(writer, "{reply}")?;
        }
        batch.clear();
        Ok(())
    }

    fn handle_insert<'t>(&self, tokens: impl Iterator<Item = &'t str>) -> String {
        let mut row = Vec::new();
        for t in tokens {
            match t.parse::<Value>() {
                Ok(v) => row.push(v),
                Err(_) => return format!("insert -> error: bad value {t:?}"),
            }
        }
        let dims = self.engine_read().cube().dims();
        if row.len() != dims {
            return format!("insert -> error: expected {dims} values, got {}", row.len());
        }
        match self.insert(row) {
            Ok((id, generation)) => format!("insert -> id {id} generation {generation}"),
            Err(e) => format!("insert -> error: {e}"),
        }
    }

    fn handle_delete<'t>(&self, mut tokens: impl Iterator<Item = &'t str>) -> String {
        let id = match tokens.next().map(str::parse::<ObjId>) {
            Some(Ok(id)) => id,
            _ => return "delete -> error: usage: delete <object-id>".to_owned(),
        };
        if tokens.next().is_some() {
            return "delete -> error: usage: delete <object-id>".to_owned();
        }
        match self.delete(id) {
            Ok(generation) => format!("delete -> id {id} generation {generation}"),
            Err(e) => format!("delete -> error: {e}"),
        }
    }

    /// Accept connections on a Unix socket until a shutdown is requested,
    /// one thread per connection. The listener polls (non-blocking accept)
    /// so a `shutdown` from any connection stops it promptly; the socket
    /// file is removed on the way out.
    #[cfg(unix)]
    pub fn listen_unix(self: &Arc<Self>, path: &std::path::Path) -> std::io::Result<()> {
        let _ = std::fs::remove_file(path);
        let listener = std::os::unix::net::UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.is_shutting_down() {
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    let daemon = Arc::clone(self);
                    workers.push(std::thread::spawn(move || {
                        let Ok(reader) = stream.try_clone() else {
                            return;
                        };
                        let _ = daemon.serve_connection(reader, stream);
                    }));
                    workers.retain(|w| !w.is_finished());
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => {
                    let _ = std::fs::remove_file(path);
                    return Err(e);
                }
            }
        }
        for w in workers {
            let _ = w.join();
        }
        let _ = std::fs::remove_file(path);
        Ok(())
    }

    /// The index the daemon currently serves from (test hook: lets
    /// assertions inspect the installed route table without a protocol
    /// round trip). The reference is only valid while no mutation swaps
    /// the cube, so callers copy what they need immediately.
    pub fn with_index<T>(&self, f: impl FnOnce(&CubeIndex) -> T) -> T {
        f(self.engine_read().cube().index())
    }
}

/// Split complete `\n`-terminated lines off the front of `pending`
/// (tolerating `\r\n`); with `flush` also take the final unterminated tail.
fn take_lines(pending: &mut Vec<u8>, flush: bool) -> Vec<String> {
    let mut lines = Vec::new();
    while let Some(at) = pending.iter().position(|&b| b == b'\n') {
        let raw: Vec<u8> = pending.drain(..=at).collect();
        lines.push(
            String::from_utf8_lossy(&raw)
                .trim_end_matches(['\n', '\r'])
                .to_string(),
        );
    }
    if flush && !pending.is_empty() {
        let raw = std::mem::take(pending);
        lines.push(String::from_utf8_lossy(&raw).to_string());
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::parse_workload;
    use crate::{run_batch, Answer, IndexedCubeSource};
    use skycube_stellar::compute_cube;
    use skycube_types::running_example;

    fn daemon() -> Daemon {
        let config = DaemonConfig {
            threads: Parallelism::sequential(),
            ..DaemonConfig::default()
        };
        Daemon::new(StellarEngine::new(&running_example()), config)
    }

    /// Run a full protocol exchange against an in-memory "connection".
    fn exchange(daemon: &Daemon, input: &str) -> (String, ConnectionEnd) {
        let mut out = Vec::new();
        let end = daemon
            .serve_connection(input.as_bytes(), &mut out)
            .expect("in-memory I/O cannot fail");
        (String::from_utf8(out).unwrap(), end)
    }

    #[test]
    fn protocol_answers_match_run_batch_byte_for_byte() {
        let d = daemon();
        let workload = "skyline BD\nskyband 1 BD\nmember 4 BD\ncount 4\ntop 2\n";
        let (replies, end) = exchange(&d, workload);
        assert_eq!(end, ConnectionEnd::Eof);
        let ds = running_example();
        let cube = compute_cube(&ds);
        let source = IndexedCubeSource::new(&cube);
        let queries = parse_workload(workload).unwrap();
        let outcome = run_batch(&source, &queries, Parallelism::sequential());
        let expect: String = queries
            .iter()
            .zip(&outcome.answers)
            .map(|(q, a)| format_answer(q, a) + "\n")
            .collect();
        assert_eq!(replies, expect);
    }

    #[test]
    fn control_verbs_barrier_and_classify() {
        let d = daemon();
        let (replies, end) = exchange(
            &d,
            "skyline BD\nquack now\nskyline B\n# a comment\n\nquit\nskyline A\n",
        );
        assert_eq!(end, ConnectionEnd::Quit);
        let lines: Vec<&str> = replies.lines().collect();
        assert_eq!(lines[0], "skyline BD -> 2 4");
        assert!(
            lines[1].starts_with("quack now -> error:"),
            "{:?}",
            lines[1]
        );
        assert_eq!(lines[2], "skyline B -> 2 3 4");
        // Nothing after quit is served.
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn mutations_bump_the_generation_and_refresh_answers() {
        let d = daemon();
        let (before, _) = exchange(&d, "skyline B\n");
        assert_eq!(before, "skyline B -> 2 3 4\n");
        // The new object takes over subspace B outright (B = 0).
        let (reply, _) = exchange(&d, "insert 9 0 11 9\n");
        assert_eq!(reply, "insert -> id 5 generation 1\n");
        let (after, _) = exchange(&d, "skyline B\n");
        assert_eq!(after, "skyline B -> 5\n", "stale answer after insert");
        let (reply, _) = exchange(&d, "delete 5\n");
        assert_eq!(reply, "delete -> id 5 generation 2\n");
        let (restored, _) = exchange(&d, "skyline B\n");
        assert_eq!(restored, "skyline B -> 2 3 4\n");
        let m = d.metrics();
        assert_eq!((m.inserts, m.deletes, m.generation), (1, 1, 2));
    }

    #[test]
    fn malformed_mutations_reply_with_diagnostics() {
        let d = daemon();
        let (r, _) = exchange(&d, "insert 1 2\n");
        assert_eq!(r, "insert -> error: expected 4 values, got 2\n");
        let (r, _) = exchange(&d, "insert a b c d\n");
        assert!(r.starts_with("insert -> error: bad value"), "{r:?}");
        let (r, _) = exchange(&d, "delete nineteen\n");
        assert!(r.contains("usage: delete"), "{r:?}");
        let (r, _) = exchange(&d, "delete 99\n");
        assert!(r.starts_with("delete -> error:"), "{r:?}");
    }

    #[test]
    fn stats_scrape_is_blank_line_terminated_name_value_pairs() {
        let d = daemon();
        let (_, _) = exchange(&d, "skyline BD\nskyline BD\n");
        let (scrape, _) = exchange(&d, "stats\n");
        assert!(scrape.ends_with("\n\n"), "missing blank-line terminator");
        for needle in [
            "generation 0",
            "queries_total 2",
            "shed_total 0",
            "cache_hits 1",
            "cache_misses 1",
            "route_table_flat_max_runs",
            "tuner_observations",
        ] {
            assert!(
                scrape.lines().any(|l| l.starts_with(needle)),
                "missing {needle:?} in:\n{scrape}"
            );
        }
        // Every line of the block body is "name value".
        for line in scrape.trim_end().lines() {
            let mut parts = line.split_whitespace();
            assert!(parts.next().is_some(), "empty metrics line");
            parts
                .next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| panic!("non-numeric metrics line {line:?}"));
            assert_eq!(parts.next(), None, "trailing tokens in {line:?}");
        }
    }

    #[test]
    fn shutdown_verb_stops_the_daemon() {
        let d = daemon();
        let (_, end) = exchange(&d, "shutdown\n");
        assert_eq!(end, ConnectionEnd::Shutdown);
        assert!(d.is_shutting_down());
        // A connection opened after the flag is set winds down immediately.
        let (out, end) = exchange(&d, "skyline BD\n");
        assert_eq!(end, ConnectionEnd::Shutdown);
        assert_eq!(out, "");
    }

    #[test]
    fn warm_state_survives_across_waves() {
        let d = daemon();
        let queries = parse_workload("skyline BD\n").unwrap();
        d.serve_wave(&queries);
        d.serve_wave(&queries);
        let cache = d.cache.stats();
        assert_eq!((cache.hits, cache.misses), (1, 1));
        // The second wave adopted the first wave's scratch buffer.
        assert_eq!(lock_recover(&d.scratches).len(), 1);
        let m = d.metrics();
        assert_eq!((m.waves, m.queries), (2, 2));
        assert!(m.service_ewma_ns > 0);
    }

    #[test]
    fn admission_sheds_when_projected_wait_exceeds_the_deadline() {
        let config = DaemonConfig {
            threads: Parallelism::sequential(),
            deadline: Some(Duration::from_millis(1)),
            ..DaemonConfig::default()
        };
        let d = Daemon::new(StellarEngine::new(&running_example()), config);
        // Seed the queue-depth and service-time signals directly: 4 queries
        // notionally in flight at 1 ms each projects a 4 ms wait.
        d.admission.inflight.store(4, Ordering::Relaxed);
        d.admission.ewma_ns.store(1_000_000, Ordering::Relaxed);
        let queries = parse_workload("skyline BD\nskyline B\n").unwrap();
        let outcome = d.serve_wave(&queries);
        for a in &outcome.answers {
            let err = a.clone().unwrap_err();
            assert_eq!(err.kind(), "resource-exhausted");
            assert!(err.to_string().contains("admission shed"), "{err}");
        }
        assert_eq!(d.metrics().shed, 2);
        // Clearing the pressure admits the same wave again.
        d.admission.inflight.store(0, Ordering::Relaxed);
        let outcome = d.serve_wave(&queries);
        assert_eq!(outcome.answers[0], Ok(Answer::Skyline(vec![2, 4])));
        assert_eq!(d.metrics().shed, 2);
    }

    #[test]
    fn autotuner_is_attached_unless_disabled() {
        assert!(daemon().tuner().is_some());
        let config = DaemonConfig {
            autotune: false,
            threads: Parallelism::sequential(),
            ..DaemonConfig::default()
        };
        let d = Daemon::new(StellarEngine::new(&running_example()), config);
        assert!(d.tuner().is_none());
        let queries = parse_workload("skyline BD\n").unwrap();
        assert_eq!(
            d.serve_wave(&queries).answers[0],
            Ok(Answer::Skyline(vec![2, 4]))
        );
    }

    #[test]
    fn take_lines_frames_waves_and_flushes_tails() {
        let mut pending = b"skyline A\r\nskyline B\nsky".to_vec();
        let lines = take_lines(&mut pending, false);
        assert_eq!(lines, ["skyline A", "skyline B"]);
        assert_eq!(pending, b"sky");
        let lines = take_lines(&mut pending, true);
        assert_eq!(lines, ["sky"]);
        assert!(pending.is_empty());
    }
}
