//! Batched workload execution over any [`SkylineSource`].
//!
//! [`run_batch`] fans a parsed workload out over `crates/parallel` (results
//! come back in input order regardless of thread count) and collects
//! per-run [`QueryStats`]: wall-clock time, the delta of groups the source
//! touched, and — for cached sources — the delta of cache hits and misses.
//!
//! [`run_batch_with`] adds the hardening knobs: a per-query deadline
//! (enforced cooperatively inside sources that support it, post-hoc
//! otherwise) and per-query panic isolation — a query that panics inside
//! its source yields [`ServeError::SourcePanicked`] on its own line while
//! the rest of the batch completes normally.

use crate::error::ServeError;
use crate::source::{IndexStats, SkylineSource};
use crate::workload::Query;
use skycube_parallel::{par_map_slice, Parallelism};
use skycube_types::ObjId;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// One query's answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Answer {
    /// Skyline objects, ascending ids.
    Skyline(Vec<ObjId>),
    /// Whether the object is a skyline object of the subspace.
    Member(bool),
    /// The object's subspace-skyline membership count.
    Count(u64),
    /// Top-k frequent objects with counts, count descending then id.
    Top(Vec<(ObjId, u64)>),
}

/// Aggregate statistics for one [`run_batch`] call.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QueryStats {
    /// Number of queries executed.
    pub queries: usize,
    /// Number of queries that returned an error.
    pub errors: usize,
    /// Wall-clock seconds for the whole batch.
    pub seconds: f64,
    /// Groups (or group-like candidates) the source examined during the
    /// batch; `0` for sources without the notion.
    pub groups_touched: u64,
    /// Skyline queries answered from the cache during the batch, if the
    /// source is cached.
    pub cache_hits: u64,
    /// Skyline queries that missed the cache during the batch, if the
    /// source is cached.
    pub cache_misses: u64,
    /// Index-side profiling deltas (merge routes, workload histograms,
    /// memo hits) for the batch, if the source serves through a
    /// [`skycube_stellar::CubeIndex`].
    pub index: Option<IndexStats>,
    /// Queries the source demoted to a cheaper rung during the batch, if
    /// it is a [`crate::FallbackSource`] ladder.
    pub demotions: u64,
    /// The engine generation the batch ran against, when the caller tagged
    /// one via [`BatchOptions::generation`]. Lets mixed query/mutation
    /// drivers attribute every answer to the cube state that produced it.
    pub generation: Option<u64>,
}

/// Answers (in workload order) plus run statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// One result per query, in the order the workload listed them.
    pub answers: Vec<Result<Answer, ServeError>>,
    /// Aggregate counters for the run.
    pub stats: QueryStats,
}

/// Hardening knobs for [`run_batch_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchOptions {
    /// Per-query time budget. Each query's absolute deadline is stamped
    /// when it starts (not when the batch starts), so a long batch does
    /// not starve its tail. `None` runs unbounded.
    pub deadline: Option<Duration>,
    /// The [`skycube_stellar::StellarEngine`] generation this batch is
    /// served against, echoed into [`QueryStats::generation`]. Callers
    /// interleaving mutations with batches stamp it (after syncing their
    /// caches through a [`crate::GenerationGate`]) so stats and answers
    /// stay attributable to one cube state.
    pub generation: Option<u64>,
}

fn answer_one(
    source: &dyn SkylineSource,
    query: &Query,
    deadline: Option<Instant>,
) -> Result<Answer, ServeError> {
    match *query {
        Query::Skyline(space) => source
            .subspace_skyline_within(space, deadline)
            .map(Answer::Skyline),
        Query::Skyband(k, space) => {
            let band = source.skyband(k, space)?;
            // No cooperative checkpoints inside the skyband engines yet;
            // enforce the deadline post-hoc like the default skyline path.
            match deadline {
                Some(d) if Instant::now() >= d => {
                    Err(ServeError::DeadlineExceeded { budget_ms: 0 })
                }
                _ => Ok(Answer::Skyline(band)),
            }
        }
        Query::Member(o, space) => source.is_skyline_in(o, space).map(Answer::Member),
        Query::Count(o) => source.membership_count(o).map(Answer::Count),
        Query::Top(k) => Ok(Answer::Top(source.top_k_frequent(k))),
    }
}

/// The canonical one-line text rendering of a query result — the shape the
/// `query` CLI has always printed and the daemon protocol answers with
/// (shared so "daemon answers ≡ batch answers" is true byte for byte).
pub fn format_answer(query: &Query, result: &Result<Answer, ServeError>) -> String {
    match result {
        Ok(Answer::Skyline(ids)) => {
            let ids: Vec<String> = ids.iter().map(u32::to_string).collect();
            format!("{query} -> {}", ids.join(" "))
        }
        Ok(Answer::Member(yes)) => format!("{query} -> {yes}"),
        Ok(Answer::Count(n)) => format!("{query} -> {n}"),
        Ok(Answer::Top(ranked)) => {
            let pairs: Vec<String> = ranked.iter().map(|(o, n)| format!("{o}:{n}")).collect();
            format!("{query} -> {}", pairs.join(" "))
        }
        Err(e) => format!("{query} -> error: {e}"),
    }
}

/// Best-effort text from a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Execute `queries` against `source`, fanning out over `par` threads.
///
/// Answers are returned in workload order. Counter deltas (groups touched,
/// cache hits/misses) are measured across the batch, so a source can be
/// reused for several batches and each outcome reports only its own work.
pub fn run_batch(source: &dyn SkylineSource, queries: &[Query], par: Parallelism) -> BatchOutcome {
    run_batch_with(source, queries, par, &BatchOptions::default())
}

/// [`run_batch`] with explicit [`BatchOptions`].
///
/// Every query runs inside `catch_unwind`, so a source that panics
/// mid-query produces a [`ServeError::SourcePanicked`] line instead of
/// tearing the batch (and its worker thread) down. Deadline overruns are
/// reported as [`ServeError::DeadlineExceeded`] carrying the configured
/// budget.
pub fn run_batch_with(
    source: &dyn SkylineSource,
    queries: &[Query],
    par: Parallelism,
    options: &BatchOptions,
) -> BatchOutcome {
    let budget_ms = options
        .deadline
        .map(|d| d.as_millis() as u64)
        .unwrap_or_default();
    let touched_before = source.groups_touched();
    let cache_before = source.cache_stats().unwrap_or_default();
    let index_before = source.index_stats();
    let demotions_before = source.demotions();
    let start = Instant::now();
    let answers = par_map_slice(par, queries, |q| {
        let deadline = options.deadline.map(|d| Instant::now() + d);
        // AssertUnwindSafe: a panicking source may leave interior state
        // (scratch pools, caches) locked mid-update; every such structure
        // in this crate recovers from poisoning on its next lock.
        match catch_unwind(AssertUnwindSafe(|| answer_one(source, q, deadline))) {
            Ok(Err(ServeError::DeadlineExceeded { .. })) => {
                Err(ServeError::DeadlineExceeded { budget_ms })
            }
            Ok(result) => result,
            Err(payload) => Err(ServeError::SourcePanicked(panic_message(payload.as_ref()))),
        }
    });
    let seconds = start.elapsed().as_secs_f64();
    let cache_after = source.cache_stats().unwrap_or_default();
    let index = source
        .index_stats()
        .map(|after| IndexStats::delta(&index_before.unwrap_or_default(), &after));
    let stats = QueryStats {
        queries: queries.len(),
        errors: answers.iter().filter(|a| a.is_err()).count(),
        seconds,
        groups_touched: source.groups_touched() - touched_before,
        cache_hits: cache_after.hits - cache_before.hits,
        cache_misses: cache_after.misses - cache_before.misses,
        index,
        demotions: source.demotions() - demotions_before,
        generation: options.generation,
    };
    BatchOutcome { answers, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachedSource;
    use crate::source::{DirectSource, IndexedCubeSource};
    use crate::workload::parse_workload;
    use skycube_stellar::compute_cube;
    use skycube_types::running_example;

    const WORKLOAD: &str = "skyline BD\nmember 4 BD\nmember 0 BD\ncount 4\ntop 2\nskyline Z\n";

    #[test]
    fn batch_preserves_workload_order_and_counts_errors() {
        let ds = running_example();
        let cube = compute_cube(&ds);
        let source = IndexedCubeSource::new(&cube);
        let queries = parse_workload(WORKLOAD).unwrap();
        let outcome = run_batch(&source, &queries, Parallelism::sequential());
        assert_eq!(outcome.answers.len(), 6);
        assert_eq!(outcome.answers[0], Ok(Answer::Skyline(vec![2, 4])));
        assert_eq!(outcome.answers[1], Ok(Answer::Member(true)));
        assert_eq!(outcome.answers[2], Ok(Answer::Member(false)));
        assert_eq!(outcome.answers[3], Ok(Answer::Count(10)));
        assert_eq!(outcome.answers[4], Ok(Answer::Top(vec![(1, 10), (4, 10)])));
        assert!(outcome.answers[5].is_err());
        assert_eq!(outcome.stats.queries, 6);
        assert_eq!(outcome.stats.errors, 1);
        assert!(outcome.stats.groups_touched > 0);
    }

    #[test]
    fn threaded_batches_match_the_sequential_answers() {
        let ds = running_example();
        let cube = compute_cube(&ds);
        let queries = parse_workload(WORKLOAD).unwrap();
        let sequential = {
            let source = IndexedCubeSource::new(&cube);
            run_batch(&source, &queries, Parallelism::sequential()).answers
        };
        for threads in [2, 4] {
            let source = IndexedCubeSource::new(&cube);
            let outcome = run_batch(&source, &queries, Parallelism::new(threads));
            assert_eq!(outcome.answers, sequential, "threads = {threads}");
            let direct = DirectSource::new(&ds);
            let outcome = run_batch(&direct, &queries, Parallelism::new(threads));
            assert_eq!(outcome.answers, sequential, "direct, threads = {threads}");
        }
    }

    #[test]
    fn stats_report_per_batch_deltas() {
        let ds = running_example();
        let cube = compute_cube(&ds);
        let source = CachedSource::new(IndexedCubeSource::new(&cube), 8);
        let queries = parse_workload("skyline BD\nskyline BD\nskyline BD\n").unwrap();
        let first = run_batch(&source, &queries, Parallelism::sequential());
        assert_eq!(first.stats.cache_misses, 1);
        assert_eq!(first.stats.cache_hits, 2);
        let second = run_batch(&source, &queries, Parallelism::sequential());
        // Deltas, not cumulative totals: the repeat batch is all hits and
        // touches the index not at all.
        assert_eq!(second.stats.cache_misses, 0);
        assert_eq!(second.stats.cache_hits, 3);
        assert_eq!(second.stats.groups_touched, 0);
    }

    #[test]
    fn batches_are_tagged_with_the_serving_generation() {
        use crate::cache::{CachedSource, GateOutcome, GenerationGate, SubspaceCache};
        use skycube_stellar::StellarEngine;
        let mut engine = StellarEngine::new(&running_example());
        let queries = parse_workload("skyline B\nskyline BD\n").unwrap();
        let cache = SubspaceCache::new(8);
        let gate = GenerationGate::new(engine.generation());
        let serve = |engine: &StellarEngine, cache: SubspaceCache| {
            let source = CachedSource::with_cache(IndexedCubeSource::new(engine.cube()), cache);
            let options = BatchOptions {
                generation: Some(engine.generation()),
                ..BatchOptions::default()
            };
            run_batch_with(&source, &queries, Parallelism::sequential(), &options)
        };
        let outcome = serve(&engine, cache);
        assert_eq!(outcome.stats.generation, Some(0));
        assert_eq!(outcome.answers[0], Ok(Answer::Skyline(vec![2, 3, 4])));
        // A dominated (fast-path) mutation, synced through the gate: the
        // next batch carries the new generation and fresh answers.
        engine.insert(vec![7, 4, 12, 3]).unwrap();
        let cache = SubspaceCache::new(8);
        assert_eq!(
            gate.sync(engine.generation(), engine.last_delta(), &cache),
            GateOutcome::Patched
        );
        let outcome = serve(&engine, cache);
        assert_eq!(outcome.stats.generation, Some(1));
        // The insert ties B=4 and D=3: it joins subspace B's skyline.
        assert_eq!(outcome.answers[0], Ok(Answer::Skyline(vec![2, 3, 4, 5])));
        // Untagged batches stay untagged.
        let source = IndexedCubeSource::new(engine.cube());
        let outcome = run_batch(&source, &queries, Parallelism::sequential());
        assert_eq!(outcome.stats.generation, None);
    }

    #[test]
    fn a_panicking_query_fails_alone_not_the_batch() {
        struct PanickySource;
        impl SkylineSource for PanickySource {
            fn label(&self) -> &'static str {
                "panicky"
            }
            fn dims(&self) -> usize {
                4
            }
            fn num_objects(&self) -> usize {
                5
            }
            fn subspace_skyline(&self, space: DimMask) -> Result<Vec<ObjId>, ServeError> {
                if space.len() == 2 {
                    panic!("synthetic panic on {space}");
                }
                Ok(vec![0])
            }
            fn is_skyline_in(&self, _o: ObjId, _space: DimMask) -> Result<bool, ServeError> {
                Ok(true)
            }
            fn membership_count(&self, _o: ObjId) -> Result<u64, ServeError> {
                Ok(1)
            }
            fn top_k_frequent(&self, _k: usize) -> Vec<(ObjId, u64)> {
                Vec::new()
            }
        }
        use skycube_types::DimMask;
        let queries = parse_workload("skyline A\nskyline BD\ncount 3\n").unwrap();
        for threads in [1, 3] {
            let outcome = run_batch(&PanickySource, &queries, Parallelism::new(threads));
            assert_eq!(outcome.answers[0], Ok(Answer::Skyline(vec![0])));
            let err = outcome.answers[1].clone().unwrap_err();
            assert_eq!(err.kind(), "panic");
            assert!(err.to_string().contains("synthetic panic"), "{err}");
            assert_eq!(outcome.answers[2], Ok(Answer::Count(1)));
            assert_eq!(outcome.stats.errors, 1);
        }
    }

    #[test]
    fn deadlines_classify_overruns_with_the_budget() {
        struct SlowSource;
        impl SkylineSource for SlowSource {
            fn label(&self) -> &'static str {
                "slow"
            }
            fn dims(&self) -> usize {
                4
            }
            fn num_objects(&self) -> usize {
                5
            }
            fn subspace_skyline(&self, _space: DimMask) -> Result<Vec<ObjId>, ServeError> {
                std::thread::sleep(std::time::Duration::from_millis(20));
                Ok(vec![0])
            }
            fn is_skyline_in(&self, _o: ObjId, _space: DimMask) -> Result<bool, ServeError> {
                Ok(true)
            }
            fn membership_count(&self, _o: ObjId) -> Result<u64, ServeError> {
                Ok(1)
            }
            fn top_k_frequent(&self, _k: usize) -> Vec<(ObjId, u64)> {
                Vec::new()
            }
        }
        use skycube_types::DimMask;
        let queries = parse_workload("skyline A\n").unwrap();
        let options = BatchOptions {
            deadline: Some(std::time::Duration::from_millis(1)),
            generation: None,
        };
        let outcome = run_batch_with(&SlowSource, &queries, Parallelism::sequential(), &options);
        assert_eq!(
            outcome.answers[0],
            Err(ServeError::DeadlineExceeded { budget_ms: 1 })
        );
        assert!(outcome.answers[0]
            .clone()
            .unwrap_err()
            .to_string()
            .contains("1 ms"));
        // A generous budget answers normally.
        let options = BatchOptions {
            deadline: Some(std::time::Duration::from_secs(60)),
            generation: None,
        };
        let outcome = run_batch_with(&SlowSource, &queries, Parallelism::sequential(), &options);
        assert_eq!(outcome.answers[0], Ok(Answer::Skyline(vec![0])));
    }

    #[test]
    fn indexed_source_honors_batch_deadlines_cooperatively() {
        // The indexed path enforces deadlines at its checkpoints rather
        // than post-hoc: an already-expired budget is caught before any
        // route work happens.
        let ds = running_example();
        let cube = compute_cube(&ds);
        let source = IndexedCubeSource::new(&cube);
        let queries = parse_workload("skyline BD\n").unwrap();
        let options = BatchOptions {
            deadline: Some(std::time::Duration::ZERO),
            generation: None,
        };
        let outcome = run_batch_with(&source, &queries, Parallelism::sequential(), &options);
        assert_eq!(
            outcome.answers[0],
            Err(ServeError::DeadlineExceeded { budget_ms: 0 })
        );
        // The scratch pool survives the abandoned query: the next
        // unbounded batch answers normally.
        let outcome = run_batch(&source, &queries, Parallelism::sequential());
        assert_eq!(outcome.answers[0], Ok(Answer::Skyline(vec![2, 4])));
    }

    #[test]
    fn batch_stats_count_ladder_demotions() {
        use crate::fallback::FallbackSource;
        struct FailingSource;
        impl SkylineSource for FailingSource {
            fn label(&self) -> &'static str {
                "failing"
            }
            fn dims(&self) -> usize {
                4
            }
            fn num_objects(&self) -> usize {
                5
            }
            fn subspace_skyline(&self, _space: DimMask) -> Result<Vec<ObjId>, ServeError> {
                Err(ServeError::Internal("always fails".to_owned()))
            }
            fn is_skyline_in(&self, _o: ObjId, _space: DimMask) -> Result<bool, ServeError> {
                Err(ServeError::Internal("always fails".to_owned()))
            }
            fn membership_count(&self, _o: ObjId) -> Result<u64, ServeError> {
                Err(ServeError::Internal("always fails".to_owned()))
            }
            fn top_k_frequent(&self, _k: usize) -> Vec<(ObjId, u64)> {
                Vec::new()
            }
        }
        use skycube_types::DimMask;
        let ds = running_example();
        let cube = compute_cube(&ds);
        let scan = crate::source::ScanCubeSource::new(&cube);
        let failing = FailingSource;
        let ladder = FallbackSource::new(&failing).then(&scan);
        let queries = parse_workload("skyline BD\nskyline A\n").unwrap();
        let outcome = run_batch(&ladder, &queries, Parallelism::sequential());
        assert_eq!(outcome.answers[0], Ok(Answer::Skyline(vec![2, 4])));
        assert_eq!(outcome.stats.errors, 0);
        assert_eq!(outcome.stats.demotions, 2);
        // A second batch reports only its own demotions.
        let outcome = run_batch(&ladder, &queries, Parallelism::sequential());
        assert_eq!(outcome.stats.demotions, 2);
    }

    #[test]
    fn batch_stats_carry_index_route_deltas() {
        let ds = running_example();
        let cube = compute_cube(&ds);
        let source = IndexedCubeSource::new(&cube);
        let workload: String = ds
            .full_space()
            .subsets()
            .map(|s| format!("skyline {s}\n"))
            .collect();
        let queries = parse_workload(&workload).unwrap();
        let outcome = run_batch(&source, &queries, Parallelism::sequential());
        let index = outcome.stats.index.expect("indexed source reports stats");
        assert_eq!(index.total_queries(), queries.len() as u64);
        // A repeat batch reports only its own work, now memo-accelerated.
        let outcome = run_batch(&source, &queries, Parallelism::sequential());
        let index = outcome.stats.index.unwrap();
        assert_eq!(index.total_queries(), queries.len() as u64);
        assert!(index.memo_exact > 0, "{index:?}");
        // Sources without an index report none; cached wrappers forward.
        let direct = DirectSource::new(&ds);
        let outcome = run_batch(&direct, &queries, Parallelism::sequential());
        assert_eq!(outcome.stats.index, None);
        let cached = CachedSource::new(IndexedCubeSource::new(&cube), 8);
        let outcome = run_batch(&cached, &queries, Parallelism::sequential());
        assert!(outcome.stats.index.is_some());
    }
}
