//! Batched workload execution over any [`SkylineSource`].
//!
//! [`run_batch`] fans a parsed workload out over `crates/parallel` (results
//! come back in input order regardless of thread count) and collects
//! per-run [`QueryStats`]: wall-clock time, the delta of groups the source
//! touched, and — for cached sources — the delta of cache hits and misses.

use crate::source::{IndexStats, SkylineSource};
use crate::workload::Query;
use skycube_parallel::{par_map_slice, Parallelism};
use skycube_types::ObjId;
use std::time::Instant;

/// One query's answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Answer {
    /// Skyline objects, ascending ids.
    Skyline(Vec<ObjId>),
    /// Whether the object is a skyline object of the subspace.
    Member(bool),
    /// The object's subspace-skyline membership count.
    Count(u64),
    /// Top-k frequent objects with counts, count descending then id.
    Top(Vec<(ObjId, u64)>),
}

/// Aggregate statistics for one [`run_batch`] call.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QueryStats {
    /// Number of queries executed.
    pub queries: usize,
    /// Number of queries that returned an error.
    pub errors: usize,
    /// Wall-clock seconds for the whole batch.
    pub seconds: f64,
    /// Groups (or group-like candidates) the source examined during the
    /// batch; `0` for sources without the notion.
    pub groups_touched: u64,
    /// Skyline queries answered from the cache during the batch, if the
    /// source is cached.
    pub cache_hits: u64,
    /// Skyline queries that missed the cache during the batch, if the
    /// source is cached.
    pub cache_misses: u64,
    /// Index-side profiling deltas (merge routes, workload histograms,
    /// memo hits) for the batch, if the source serves through a
    /// [`skycube_stellar::CubeIndex`].
    pub index: Option<IndexStats>,
}

/// Answers (in workload order) plus run statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// One result per query, in the order the workload listed them.
    pub answers: Vec<Result<Answer, String>>,
    /// Aggregate counters for the run.
    pub stats: QueryStats,
}

fn answer_one(source: &dyn SkylineSource, query: &Query) -> Result<Answer, String> {
    match *query {
        Query::Skyline(space) => source.subspace_skyline(space).map(Answer::Skyline),
        Query::Member(o, space) => source.is_skyline_in(o, space).map(Answer::Member),
        Query::Count(o) => source.membership_count(o).map(Answer::Count),
        Query::Top(k) => Ok(Answer::Top(source.top_k_frequent(k))),
    }
}

/// Execute `queries` against `source`, fanning out over `par` threads.
///
/// Answers are returned in workload order. Counter deltas (groups touched,
/// cache hits/misses) are measured across the batch, so a source can be
/// reused for several batches and each outcome reports only its own work.
pub fn run_batch(source: &dyn SkylineSource, queries: &[Query], par: Parallelism) -> BatchOutcome {
    let touched_before = source.groups_touched();
    let cache_before = source.cache_stats().unwrap_or_default();
    let index_before = source.index_stats();
    let start = Instant::now();
    let answers = par_map_slice(par, queries, |q| answer_one(source, q));
    let seconds = start.elapsed().as_secs_f64();
    let cache_after = source.cache_stats().unwrap_or_default();
    let index = source
        .index_stats()
        .map(|after| IndexStats::delta(&index_before.unwrap_or_default(), &after));
    let stats = QueryStats {
        queries: queries.len(),
        errors: answers.iter().filter(|a| a.is_err()).count(),
        seconds,
        groups_touched: source.groups_touched() - touched_before,
        cache_hits: cache_after.hits - cache_before.hits,
        cache_misses: cache_after.misses - cache_before.misses,
        index,
    };
    BatchOutcome { answers, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachedSource;
    use crate::source::{DirectSource, IndexedCubeSource};
    use crate::workload::parse_workload;
    use skycube_stellar::compute_cube;
    use skycube_types::running_example;

    const WORKLOAD: &str = "skyline BD\nmember 4 BD\nmember 0 BD\ncount 4\ntop 2\nskyline Z\n";

    #[test]
    fn batch_preserves_workload_order_and_counts_errors() {
        let ds = running_example();
        let cube = compute_cube(&ds);
        let source = IndexedCubeSource::new(&cube);
        let queries = parse_workload(WORKLOAD).unwrap();
        let outcome = run_batch(&source, &queries, Parallelism::sequential());
        assert_eq!(outcome.answers.len(), 6);
        assert_eq!(outcome.answers[0], Ok(Answer::Skyline(vec![2, 4])));
        assert_eq!(outcome.answers[1], Ok(Answer::Member(true)));
        assert_eq!(outcome.answers[2], Ok(Answer::Member(false)));
        assert_eq!(outcome.answers[3], Ok(Answer::Count(10)));
        assert_eq!(outcome.answers[4], Ok(Answer::Top(vec![(1, 10), (4, 10)])));
        assert!(outcome.answers[5].is_err());
        assert_eq!(outcome.stats.queries, 6);
        assert_eq!(outcome.stats.errors, 1);
        assert!(outcome.stats.groups_touched > 0);
    }

    #[test]
    fn threaded_batches_match_the_sequential_answers() {
        let ds = running_example();
        let cube = compute_cube(&ds);
        let queries = parse_workload(WORKLOAD).unwrap();
        let sequential = {
            let source = IndexedCubeSource::new(&cube);
            run_batch(&source, &queries, Parallelism::sequential()).answers
        };
        for threads in [2, 4] {
            let source = IndexedCubeSource::new(&cube);
            let outcome = run_batch(&source, &queries, Parallelism::new(threads));
            assert_eq!(outcome.answers, sequential, "threads = {threads}");
            let direct = DirectSource::new(&ds);
            let outcome = run_batch(&direct, &queries, Parallelism::new(threads));
            assert_eq!(outcome.answers, sequential, "direct, threads = {threads}");
        }
    }

    #[test]
    fn stats_report_per_batch_deltas() {
        let ds = running_example();
        let cube = compute_cube(&ds);
        let source = CachedSource::new(IndexedCubeSource::new(&cube), 8);
        let queries = parse_workload("skyline BD\nskyline BD\nskyline BD\n").unwrap();
        let first = run_batch(&source, &queries, Parallelism::sequential());
        assert_eq!(first.stats.cache_misses, 1);
        assert_eq!(first.stats.cache_hits, 2);
        let second = run_batch(&source, &queries, Parallelism::sequential());
        // Deltas, not cumulative totals: the repeat batch is all hits and
        // touches the index not at all.
        assert_eq!(second.stats.cache_misses, 0);
        assert_eq!(second.stats.cache_hits, 3);
        assert_eq!(second.stats.groups_touched, 0);
    }

    #[test]
    fn batch_stats_carry_index_route_deltas() {
        let ds = running_example();
        let cube = compute_cube(&ds);
        let source = IndexedCubeSource::new(&cube);
        let workload: String = ds
            .full_space()
            .subsets()
            .map(|s| format!("skyline {s}\n"))
            .collect();
        let queries = parse_workload(&workload).unwrap();
        let outcome = run_batch(&source, &queries, Parallelism::sequential());
        let index = outcome.stats.index.expect("indexed source reports stats");
        assert_eq!(index.total_queries(), queries.len() as u64);
        // A repeat batch reports only its own work, now memo-accelerated.
        let outcome = run_batch(&source, &queries, Parallelism::sequential());
        let index = outcome.stats.index.unwrap();
        assert_eq!(index.total_queries(), queries.len() as u64);
        assert!(index.memo_exact > 0, "{index:?}");
        // Sources without an index report none; cached wrappers forward.
        let direct = DirectSource::new(&ds);
        let outcome = run_batch(&direct, &queries, Parallelism::sequential());
        assert_eq!(outcome.stats.index, None);
        let cached = CachedSource::new(IndexedCubeSource::new(&cube), 8);
        let outcome = run_batch(&cached, &queries, Parallelism::sequential());
        assert!(outcome.stats.index.is_some());
    }
}
