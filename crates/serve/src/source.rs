//! The unified [`SkylineSource`] trait and its six implementations.

use crate::cache::CacheStats;
use crate::error::ServeError;
use crate::tuner::RouteTuner;
use skycube_skyey::SkyCube;
use skycube_skyline::{k_skyband, Algorithm};
use skycube_stellar::{CompressedSkylineCube, CubeIndex, IndexScratch, MemoOutcome, QueryBudget};
use skycube_subsky::{AnchoredSubskyIndex, SubskyIndex};
use skycube_types::{Dataset, DimMask, DominanceKernel, ObjId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Lock `m`, recovering from mutex poisoning instead of panicking. Used
/// only for state that stays valid across a holder's panic (scratch pools
/// whose contents are reinitialized per query, monotone counters) — state
/// that can be left half-updated must also be cleared on recovery (see
/// [`crate::SubspaceCache`]).
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Per-merge-route counters for one [`IndexedCubeSource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouteStats {
    /// Skyline queries answered through this route.
    pub queries: u64,
    /// Cumulative wall-clock nanoseconds spent in queries on this route
    /// (prefilter + merge, excluding scratch-pool handoff).
    pub nanos: u64,
}

/// Index-side profiling counters surfaced through
/// [`SkylineSource::index_stats`]: per-route query counts and timings,
/// log₂ histograms of the merge workload, and lattice-memo participation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexStats {
    /// One cell per [`skycube_stellar::MergeRoute`], indexed by
    /// [`skycube_stellar::MergeRoute::index`].
    pub routes: [RouteStats; 5],
    /// `runs_hist[b]` = skyline queries whose merged run count fell in
    /// log₂ bucket `b` (`0` for zero runs, else `⌊log₂ n⌋ + 1`, capped).
    pub runs_hist: [u64; 16],
    /// Same bucketing over elements merged (pre-dedup).
    pub elems_hist: [u64; 16],
    /// Skyline queries answered from an exact memo entry.
    pub memo_exact: u64,
    /// Skyline queries seeded from a memoized ancestor subspace.
    pub memo_ancestor: u64,
    /// Skyline queries that consulted the memo and missed.
    pub memo_miss: u64,
}

impl IndexStats {
    /// Total skyline queries across every route.
    pub fn total_queries(&self) -> u64 {
        self.routes.iter().map(|r| r.queries).sum()
    }

    /// Field-wise `self += other`, for aggregating the counters of several
    /// indexes (one per shard) into one report.
    pub fn accumulate(&mut self, other: &IndexStats) {
        for i in 0..self.routes.len() {
            self.routes[i].queries += other.routes[i].queries;
            self.routes[i].nanos += other.routes[i].nanos;
        }
        for i in 0..self.runs_hist.len() {
            self.runs_hist[i] += other.runs_hist[i];
            self.elems_hist[i] += other.elems_hist[i];
        }
        self.memo_exact += other.memo_exact;
        self.memo_ancestor += other.memo_ancestor;
        self.memo_miss += other.memo_miss;
    }

    /// Field-wise `after − before`, for per-batch deltas.
    pub fn delta(before: &IndexStats, after: &IndexStats) -> IndexStats {
        let mut out = IndexStats::default();
        for i in 0..out.routes.len() {
            out.routes[i].queries = after.routes[i].queries - before.routes[i].queries;
            out.routes[i].nanos = after.routes[i].nanos - before.routes[i].nanos;
        }
        for i in 0..out.runs_hist.len() {
            out.runs_hist[i] = after.runs_hist[i] - before.runs_hist[i];
            out.elems_hist[i] = after.elems_hist[i] - before.elems_hist[i];
        }
        out.memo_exact = after.memo_exact - before.memo_exact;
        out.memo_ancestor = after.memo_ancestor - before.memo_ancestor;
        out.memo_miss = after.memo_miss - before.memo_miss;
        out
    }
}

/// Log₂ histogram bucket: 0 for 0, else `⌊log₂ n⌋ + 1`, capped at 15.
pub(crate) fn hist_bucket(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        ((usize::BITS - n.leading_zeros()) as usize).min(15)
    }
}

/// One answer engine for the paper's query families, behind a uniform,
/// thread-shareable interface. All implementations must return *identical*
/// answers (pinned by the cross-source property tests): skylines ascending
/// by id, frequencies ordered count-descending with ties by ascending id.
pub trait SkylineSource: Sync {
    /// Short name for reports and CLI output.
    fn label(&self) -> &'static str;

    /// Dimensionality of the full space.
    fn dims(&self) -> usize;

    /// Number of objects in the underlying dataset.
    fn num_objects(&self) -> usize;

    /// The skyline of `space`, ascending ids, or a classified
    /// [`ServeError`] for an invalid subspace.
    fn subspace_skyline(&self, space: DimMask) -> Result<Vec<ObjId>, ServeError>;

    /// The skyline of `space` under an optional absolute deadline.
    ///
    /// The default implementation computes the full answer and enforces the
    /// deadline post-hoc; sources with cooperative checkpoints (the indexed
    /// path, via [`skycube_stellar::QueryBudget`]) override it to abandon
    /// work at route boundaries instead.
    fn subspace_skyline_within(
        &self,
        space: DimMask,
        deadline: Option<Instant>,
    ) -> Result<Vec<ObjId>, ServeError> {
        let out = self.subspace_skyline(space)?;
        match deadline {
            Some(d) if Instant::now() >= d => Err(ServeError::DeadlineExceeded { budget_ms: 0 }),
            _ => Ok(out),
        }
    }

    /// The k-skyband of `space` (objects dominated by fewer than `k`
    /// others), ascending ids. `k = 1` is exactly the skyline, so every
    /// source serves it; deeper bands need the dataset rows, which
    /// cube-backed sources do not hold — their default answers
    /// [`ServeError::Unsupported`], a *demotable* error, so a fallback
    /// ladder can demote the query to a dataset-backed rung.
    fn skyband(&self, k: usize, space: DimMask) -> Result<Vec<ObjId>, ServeError> {
        check_skyband_k(k, space)?;
        if k == 1 {
            return self.subspace_skyline(space);
        }
        check_space(space, self.dims())?;
        Err(ServeError::Unsupported(format!(
            "{}: the {k}-skyband needs the dataset rows; this source holds only the \
             skyline (k = 1) layer",
            self.label()
        )))
    }

    /// Whether object `o` is a skyline object of `space`.
    fn is_skyline_in(&self, o: ObjId, space: DimMask) -> Result<bool, ServeError>;

    /// The number of subspaces in which `o` is a skyline object.
    fn membership_count(&self, o: ObjId) -> Result<u64, ServeError>;

    /// The `k` most frequent subspace-skyline objects with their counts,
    /// count descending, ties by ascending id.
    fn top_k_frequent(&self, k: usize) -> Vec<(ObjId, u64)>;

    /// Cumulative number of groups (or group-like candidates) examined by
    /// this source since construction; `0` for engines without groups.
    fn groups_touched(&self) -> u64 {
        0
    }

    /// Cache counters, for sources wrapped in a [`crate::CachedSource`].
    fn cache_stats(&self) -> Option<CacheStats> {
        None
    }

    /// Cumulative index-side profiling counters (merge routes, workload
    /// histograms, memo hits); `None` for sources without a [`CubeIndex`].
    fn index_stats(&self) -> Option<IndexStats> {
        None
    }

    /// Cumulative queries this source demoted to a cheaper rung; `0` for
    /// everything but [`crate::FallbackSource`].
    fn demotions(&self) -> u64 {
        0
    }
}

/// Shared validation: `space` must be non-empty and within the full space.
pub(crate) fn check_space(space: DimMask, dims: usize) -> Result<(), ServeError> {
    if space.is_empty() {
        return Err(ServeError::BadSubspace(
            "invalid subspace: the empty subspace has no skyline".to_owned(),
        ));
    }
    if !space.is_subset_of(DimMask::full(dims)) {
        return Err(ServeError::BadSubspace(format!(
            "invalid subspace {space}: not a subspace of the {dims}-dimensional full space {}",
            DimMask::full(dims)
        )));
    }
    Ok(())
}

/// Shared validation for skyband queries: `k = 0` is a caller fault —
/// the 0-skyband is empty by definition, and demoting it would only make
/// every rung reject it identically.
pub(crate) fn check_skyband_k(k: usize, space: DimMask) -> Result<(), ServeError> {
    if k == 0 {
        return Err(ServeError::BadSubspace(format!(
            "the 0-skyband of {space} is empty by definition (no object is dominated by \
             fewer than zero others); use k ≥ 1, where k = 1 is the skyline"
        )));
    }
    Ok(())
}

/// Shared validation: `o` must be a known object id.
pub(crate) fn check_object(o: ObjId, num_objects: usize) -> Result<(), ServeError> {
    if (o as usize) < num_objects {
        Ok(())
    } else {
        Err(ServeError::BadObject(format!(
            "object {o} out of range (dataset has {num_objects} objects)"
        )))
    }
}

// ---------------------------------------------------------------------
// Stellar, indexed
// ---------------------------------------------------------------------

/// The serving path: a compressed skyline cube answered through its
/// [`CubeIndex`]. The index is forced at construction so the first query
/// pays no build cost, and a scratch pool keeps the hot loop allocation-free
/// across threads.
pub struct IndexedCubeSource<'a> {
    index: &'a CubeIndex,
    touched: AtomicU64,
    scratch_pool: Mutex<Vec<IndexScratch>>,
    stats: Mutex<IndexStats>,
    tuner: Option<Arc<RouteTuner>>,
}

impl<'a> IndexedCubeSource<'a> {
    /// Build the source (and the cube's index, if not built yet).
    pub fn new(cube: &'a CompressedSkylineCube) -> Self {
        IndexedCubeSource {
            index: cube.index(),
            touched: AtomicU64::new(0),
            scratch_pool: Mutex::new(Vec::new()),
            stats: Mutex::new(IndexStats::default()),
            tuner: None,
        }
    }

    /// Build the source with a [`RouteTuner`] observing every skyline
    /// query. The tuner runs the whole autotuning loop described in
    /// [`crate::tuner`]: production timings feed it, it occasionally asks
    /// for a forced-route exploration probe (whose answer is checked
    /// against the served one), and tables it promotes are installed on
    /// the index via [`CubeIndex::set_route_table`]. Shared (`Arc`) so a
    /// resident daemon can keep one tuner across per-request sources.
    pub fn with_tuner(cube: &'a CompressedSkylineCube, tuner: Arc<RouteTuner>) -> Self {
        let mut source = Self::new(cube);
        source.tuner = Some(tuner);
        source
    }

    /// The underlying index.
    pub fn index(&self) -> &CubeIndex {
        self.index
    }

    /// The attached tuner, if any.
    pub fn tuner(&self) -> Option<&Arc<RouteTuner>> {
        self.tuner.as_ref()
    }

    /// Seed the scratch pool with warm buffers (e.g. ones carried across
    /// per-request source rebuilds by a resident daemon).
    pub fn adopt_scratches(&self, scratches: Vec<IndexScratch>) {
        lock_recover(&self.scratch_pool).extend(scratches);
    }

    /// Drain the scratch pool, handing its warm buffers to the caller.
    pub fn take_scratches(&self) -> Vec<IndexScratch> {
        std::mem::take(&mut *lock_recover(&self.scratch_pool))
    }

    fn record(&self, probe: &skycube_stellar::IndexProbe, nanos: u64) {
        let mut stats = lock_recover(&self.stats);
        let r = probe.route.index();
        stats.routes[r].queries += 1;
        stats.routes[r].nanos += nanos;
        stats.runs_hist[hist_bucket(probe.runs_merged)] += 1;
        stats.elems_hist[hist_bucket(probe.elements_merged)] += 1;
        match probe.memo {
            MemoOutcome::Exact => stats.memo_exact += 1,
            MemoOutcome::Ancestor => stats.memo_ancestor += 1,
            MemoOutcome::Miss => stats.memo_miss += 1,
            MemoOutcome::Bypass => {}
        }
    }

    /// Answer `space` with a pooled scratch, installing `deadline` as the
    /// scratch's [`QueryBudget`] so the index can abandon work at its
    /// cooperative checkpoints.
    fn answer(&self, space: DimMask, deadline: Option<Instant>) -> Result<Vec<ObjId>, ServeError> {
        let mut scratch = lock_recover(&self.scratch_pool).pop().unwrap_or_default();
        scratch.set_budget(match deadline {
            Some(d) => QueryBudget::with_deadline(d),
            None => QueryBudget::unlimited(),
        });
        let mut out = Vec::new();
        let start = Instant::now();
        let result = self
            .index
            .try_subspace_skyline_into(space, &mut scratch, &mut out);
        let nanos = start.elapsed().as_nanos() as u64;
        scratch.set_budget(QueryBudget::unlimited());
        if let (Some(tuner), Ok(probe)) = (&self.tuner, &result) {
            self.tune(tuner, probe, nanos, space, &out, &mut scratch);
        }
        lock_recover(&self.scratch_pool).push(scratch);
        let probe = result?;
        self.touched
            .fetch_add(probe.candidates as u64, Ordering::Relaxed);
        self.record(&probe, nanos);
        Ok(out)
    }

    /// The autotuning loop, run off the critical answer path: feed the
    /// served query to the tuner; when it draws an exploration probe,
    /// re-answer through the forced alternative route (unbudgeted — the
    /// served answer already met its deadline) and check the answers agree
    /// byte for byte; install any table the tuner promotes.
    fn tune(
        &self,
        tuner: &RouteTuner,
        probe: &skycube_stellar::IndexProbe,
        nanos: u64,
        space: DimMask,
        served: &[ObjId],
        scratch: &mut IndexScratch,
    ) {
        if let Some(alt_route) = tuner.observe(probe, nanos) {
            let mut alt_out = Vec::new();
            let start = Instant::now();
            let forced =
                self.index
                    .try_subspace_skyline_routed(space, alt_route, scratch, &mut alt_out);
            let alt_nanos = start.elapsed().as_nanos() as u64;
            if let Ok(alt_probe) = forced {
                let matched = alt_out == served;
                debug_assert!(matched, "route {} diverged on {space}", alt_route.name());
                tuner.observe_forced(&alt_probe, alt_nanos, matched);
            }
        }
        if let Some(table) = tuner.maybe_recalibrate() {
            self.index.set_route_table(table);
        }
    }
}

impl SkylineSource for IndexedCubeSource<'_> {
    fn label(&self) -> &'static str {
        "stellar"
    }

    fn dims(&self) -> usize {
        self.index.dims()
    }

    fn num_objects(&self) -> usize {
        self.index.num_objects()
    }

    fn subspace_skyline(&self, space: DimMask) -> Result<Vec<ObjId>, ServeError> {
        self.answer(space, None)
    }

    fn subspace_skyline_within(
        &self,
        space: DimMask,
        deadline: Option<Instant>,
    ) -> Result<Vec<ObjId>, ServeError> {
        self.answer(space, deadline)
    }

    fn is_skyline_in(&self, o: ObjId, space: DimMask) -> Result<bool, ServeError> {
        Ok(self.index.try_is_skyline_in(o, space)?)
    }

    fn membership_count(&self, o: ObjId) -> Result<u64, ServeError> {
        Ok(self.index.try_membership_count(o)?)
    }

    fn top_k_frequent(&self, k: usize) -> Vec<(ObjId, u64)> {
        self.index.top_k_frequent(k)
    }

    fn groups_touched(&self) -> u64 {
        self.touched.load(Ordering::Relaxed)
    }

    fn index_stats(&self) -> Option<IndexStats> {
        Some(*lock_recover(&self.stats))
    }
}

// ---------------------------------------------------------------------
// Stellar, scan path (reference)
// ---------------------------------------------------------------------

/// The legacy scan path over the same cube: every skyline query walks the
/// full group list and collect-sort-dedups. Kept as the baseline the index
/// is benchmarked and property-tested against.
pub struct ScanCubeSource<'a> {
    cube: &'a CompressedSkylineCube,
    touched: AtomicU64,
}

impl<'a> ScanCubeSource<'a> {
    /// Wrap a cube without building its index.
    pub fn new(cube: &'a CompressedSkylineCube) -> Self {
        ScanCubeSource {
            cube,
            touched: AtomicU64::new(0),
        }
    }
}

impl SkylineSource for ScanCubeSource<'_> {
    fn label(&self) -> &'static str {
        "stellar-scan"
    }

    fn dims(&self) -> usize {
        self.cube.dims()
    }

    fn num_objects(&self) -> usize {
        self.cube.num_objects()
    }

    fn subspace_skyline(&self, space: DimMask) -> Result<Vec<ObjId>, ServeError> {
        check_space(space, self.dims())?;
        // check_space already covers the cube's own rejections; anything
        // left is a cube/serving disagreement, i.e. a bug.
        let out = self
            .cube
            .try_subspace_skyline(space)
            .map_err(ServeError::Internal)?;
        self.touched
            .fetch_add(self.cube.num_groups() as u64, Ordering::Relaxed);
        Ok(out)
    }

    fn is_skyline_in(&self, o: ObjId, space: DimMask) -> Result<bool, ServeError> {
        check_space(space, self.dims())?;
        check_object(o, self.num_objects())?;
        Ok(self.cube.is_skyline_in(o, space))
    }

    fn membership_count(&self, o: ObjId) -> Result<u64, ServeError> {
        check_object(o, self.num_objects())?;
        Ok(self.cube.membership_count(o))
    }

    fn top_k_frequent(&self, k: usize) -> Vec<(ObjId, u64)> {
        self.cube.top_k_frequent(k)
    }

    fn groups_touched(&self) -> u64 {
        self.touched.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// Skyey's materialized SkyCube
// ---------------------------------------------------------------------

/// The materialized all-subspaces SkyCube: every skyline is a lookup; the
/// analytics enumerate the stored subspaces.
pub struct SkyCubeSource<'a> {
    cube: &'a SkyCube,
    num_objects: usize,
}

impl<'a> SkyCubeSource<'a> {
    /// Wrap a materialized SkyCube. `num_objects` is the dataset size (the
    /// SkyCube itself only stores skylines).
    pub fn new(cube: &'a SkyCube, num_objects: usize) -> Self {
        SkyCubeSource { cube, num_objects }
    }
}

impl SkylineSource for SkyCubeSource<'_> {
    fn label(&self) -> &'static str {
        "skyey"
    }

    fn dims(&self) -> usize {
        self.cube.dims()
    }

    fn num_objects(&self) -> usize {
        self.num_objects
    }

    fn subspace_skyline(&self, space: DimMask) -> Result<Vec<ObjId>, ServeError> {
        check_space(space, self.dims())?;
        self.cube
            .skyline(space)
            .map(<[ObjId]>::to_vec)
            .ok_or_else(|| ServeError::Internal(format!("subspace {space} not materialized")))
    }

    fn is_skyline_in(&self, o: ObjId, space: DimMask) -> Result<bool, ServeError> {
        check_object(o, self.num_objects)?;
        let sky = self.subspace_skyline(space)?;
        Ok(sky.binary_search(&o).is_ok())
    }

    fn membership_count(&self, o: ObjId) -> Result<u64, ServeError> {
        check_object(o, self.num_objects)?;
        Ok(self
            .cube
            .iter()
            .filter(|(_, sky)| sky.binary_search(&o).is_ok())
            .count() as u64)
    }

    fn top_k_frequent(&self, k: usize) -> Vec<(ObjId, u64)> {
        let mut freq = vec![0u64; self.num_objects];
        for (_, sky) in self.cube.iter() {
            for &o in sky {
                freq[o as usize] += 1;
            }
        }
        rank_frequencies(&freq, k)
    }
}

// ---------------------------------------------------------------------
// SUBSKY sorted index
// ---------------------------------------------------------------------

/// The SUBSKY one-dimensional sorted index: every query is an
/// early-terminating scan; the analytics enumerate subspaces on the fly.
pub struct SubskySource<'a> {
    index: SubskyIndex<'a>,
}

impl<'a> SubskySource<'a> {
    /// Build the sorted index over `ds` with the default kernel.
    pub fn new(ds: &'a Dataset) -> Self {
        SubskySource {
            index: SubskyIndex::build(ds),
        }
    }

    /// Build with an explicit dominance kernel for the query-time scans.
    pub fn with_kernel(ds: &'a Dataset, kernel: DominanceKernel) -> Self {
        SubskySource {
            index: SubskyIndex::build_with(ds, kernel),
        }
    }
}

impl SkylineSource for SubskySource<'_> {
    fn label(&self) -> &'static str {
        "subsky"
    }

    fn dims(&self) -> usize {
        self.index.dataset().dims()
    }

    fn num_objects(&self) -> usize {
        self.index.len()
    }

    fn subspace_skyline(&self, space: DimMask) -> Result<Vec<ObjId>, ServeError> {
        check_space(space, self.dims())?;
        Ok(self.index.skyline(space))
    }

    fn skyband(&self, k: usize, space: DimMask) -> Result<Vec<ObjId>, ServeError> {
        check_skyband_k(k, space)?;
        check_space(space, self.dims())?;
        Ok(k_skyband(self.index.dataset(), space, k))
    }

    fn is_skyline_in(&self, o: ObjId, space: DimMask) -> Result<bool, ServeError> {
        check_object(o, self.num_objects())?;
        let sky = self.subspace_skyline(space)?;
        Ok(sky.binary_search(&o).is_ok())
    }

    fn membership_count(&self, o: ObjId) -> Result<u64, ServeError> {
        check_object(o, self.num_objects())?;
        let full = DimMask::full(self.dims());
        Ok(full
            .subsets()
            .filter(|&s| self.index.skyline(s).binary_search(&o).is_ok())
            .count() as u64)
    }

    fn top_k_frequent(&self, k: usize) -> Vec<(ObjId, u64)> {
        let mut freq = vec![0u64; self.num_objects()];
        for s in DimMask::full(self.dims()).subsets() {
            for o in self.index.skyline(s) {
                freq[o as usize] += 1;
            }
        }
        rank_frequencies(&freq, k)
    }
}

// ---------------------------------------------------------------------
// SUBSKY multi-anchor index
// ---------------------------------------------------------------------

/// The multi-anchor SUBSKY index: objects are banded around anchor corners
/// and each query early-terminates per anchor list — the paper's "real
/// data" variant of the sorted index.
pub struct AnchoredSubskySource<'a> {
    index: AnchoredSubskyIndex<'a>,
    dims: usize,
    num_objects: usize,
}

impl<'a> AnchoredSubskySource<'a> {
    /// Default anchor count when none is configured.
    pub const DEFAULT_ANCHORS: usize = 4;

    /// Build with [`Self::DEFAULT_ANCHORS`] anchor corners.
    pub fn new(ds: &'a Dataset) -> Self {
        Self::with_anchors(ds, Self::DEFAULT_ANCHORS)
    }

    /// Build with an explicit anchor count (clamped to ≥ 1 by the index).
    pub fn with_anchors(ds: &'a Dataset, anchors: usize) -> Self {
        AnchoredSubskySource {
            index: AnchoredSubskyIndex::build(ds, anchors),
            dims: ds.dims(),
            num_objects: ds.len(),
        }
    }

    /// Number of anchor lists actually materialized.
    pub fn num_anchors(&self) -> usize {
        self.index.num_anchors()
    }
}

impl SkylineSource for AnchoredSubskySource<'_> {
    fn label(&self) -> &'static str {
        "subsky-anchored"
    }

    fn dims(&self) -> usize {
        self.dims
    }

    fn num_objects(&self) -> usize {
        self.num_objects
    }

    fn subspace_skyline(&self, space: DimMask) -> Result<Vec<ObjId>, ServeError> {
        // The underlying index panics on invalid subspaces; validate first.
        check_space(space, self.dims)?;
        Ok(self.index.skyline(space))
    }

    fn is_skyline_in(&self, o: ObjId, space: DimMask) -> Result<bool, ServeError> {
        check_object(o, self.num_objects)?;
        let sky = self.subspace_skyline(space)?;
        Ok(sky.binary_search(&o).is_ok())
    }

    fn membership_count(&self, o: ObjId) -> Result<u64, ServeError> {
        check_object(o, self.num_objects)?;
        let full = DimMask::full(self.dims);
        Ok(full
            .subsets()
            .filter(|&s| self.index.skyline(s).binary_search(&o).is_ok())
            .count() as u64)
    }

    fn top_k_frequent(&self, k: usize) -> Vec<(ObjId, u64)> {
        let mut freq = vec![0u64; self.num_objects];
        for s in DimMask::full(self.dims).subsets() {
            for o in self.index.skyline(s) {
                freq[o as usize] += 1;
            }
        }
        rank_frequencies(&freq, k)
    }
}

// ---------------------------------------------------------------------
// Direct computation
// ---------------------------------------------------------------------

/// The no-precomputation fallback: every query runs a skyline algorithm
/// straight on the dataset.
pub struct DirectSource<'a> {
    ds: &'a Dataset,
    algorithm: Algorithm,
    kernel: DominanceKernel,
}

impl<'a> DirectSource<'a> {
    /// Answer directly from `ds` with the default algorithm and kernel.
    pub fn new(ds: &'a Dataset) -> Self {
        DirectSource {
            ds,
            algorithm: Algorithm::default(),
            kernel: DominanceKernel::default(),
        }
    }

    /// Choose the dominance kernel for the per-query skyline runs.
    pub fn with_kernel(mut self, kernel: DominanceKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Choose the skyline algorithm.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }
}

impl SkylineSource for DirectSource<'_> {
    fn label(&self) -> &'static str {
        "direct"
    }

    fn dims(&self) -> usize {
        self.ds.dims()
    }

    fn num_objects(&self) -> usize {
        self.ds.len()
    }

    fn subspace_skyline(&self, space: DimMask) -> Result<Vec<ObjId>, ServeError> {
        check_space(space, self.dims())?;
        Ok(self.algorithm.run_with(self.ds, space, self.kernel))
    }

    fn skyband(&self, k: usize, space: DimMask) -> Result<Vec<ObjId>, ServeError> {
        check_skyband_k(k, space)?;
        check_space(space, self.dims())?;
        Ok(k_skyband(self.ds, space, k))
    }

    fn is_skyline_in(&self, o: ObjId, space: DimMask) -> Result<bool, ServeError> {
        check_space(space, self.dims())?;
        check_object(o, self.num_objects())?;
        Ok(self.ds.ids().all(|v| !self.ds.dominates(v, o, space)))
    }

    fn membership_count(&self, o: ObjId) -> Result<u64, ServeError> {
        check_object(o, self.num_objects())?;
        let full = DimMask::full(self.dims());
        let mut count = 0u64;
        for s in full.subsets() {
            if self.ds.ids().all(|v| !self.ds.dominates(v, o, s)) {
                count += 1;
            }
        }
        Ok(count)
    }

    fn top_k_frequent(&self, k: usize) -> Vec<(ObjId, u64)> {
        let mut freq = vec![0u64; self.num_objects()];
        for s in DimMask::full(self.dims()).subsets() {
            for o in self.algorithm.run_with(self.ds, s, self.kernel) {
                freq[o as usize] += 1;
            }
        }
        rank_frequencies(&freq, k)
    }
}

/// Turn a per-object frequency table into the canonical top-k ranking:
/// count descending, ties by ascending id, zero-count objects dropped.
pub(crate) fn rank_frequencies(freq: &[u64], k: usize) -> Vec<(ObjId, u64)> {
    let mut ranked: Vec<(ObjId, u64)> = freq
        .iter()
        .enumerate()
        .filter(|&(_, &f)| f > 0)
        .map(|(o, &f)| (o as ObjId, f))
        .collect();
    ranked.sort_unstable_by_key(|&(o, f)| (std::cmp::Reverse(f), o));
    ranked.truncate(k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycube_stellar::compute_cube;
    use skycube_types::running_example;

    fn mask(s: &str) -> DimMask {
        DimMask::parse(s).unwrap()
    }

    #[test]
    fn all_sources_agree_on_running_example() {
        let ds = running_example();
        let cube = compute_cube(&ds);
        let skycube = SkyCube::compute(&ds);
        let indexed = IndexedCubeSource::new(&cube);
        let scan = ScanCubeSource::new(&cube);
        let skyey = SkyCubeSource::new(&skycube, ds.len());
        let subsky = SubskySource::new(&ds);
        let anchored = AnchoredSubskySource::new(&ds);
        let direct = DirectSource::new(&ds);
        let sources: [&dyn SkylineSource; 6] =
            [&indexed, &scan, &skyey, &subsky, &anchored, &direct];
        for space in ds.full_space().subsets() {
            let expect = scan.subspace_skyline(space).unwrap();
            for s in sources {
                assert_eq!(
                    s.subspace_skyline(space).unwrap(),
                    expect,
                    "{} subspace {space}",
                    s.label()
                );
            }
            for o in 0..ds.len() as ObjId {
                let expect = scan.is_skyline_in(o, space).unwrap();
                for s in sources {
                    assert_eq!(
                        s.is_skyline_in(o, space).unwrap(),
                        expect,
                        "{} object {o} subspace {space}",
                        s.label()
                    );
                }
            }
        }
        for o in 0..ds.len() as ObjId {
            let expect = scan.membership_count(o).unwrap();
            for s in sources {
                assert_eq!(s.membership_count(o).unwrap(), expect, "{}", s.label());
            }
        }
        let expect = scan.top_k_frequent(10);
        for s in sources {
            assert_eq!(s.top_k_frequent(10), expect, "{}", s.label());
        }
    }

    #[test]
    fn top_k_ties_break_by_ascending_id_in_every_source() {
        // P2 (id 1) and P5 (id 4) tie at 10 memberships in the running
        // example; every source must put id 1 first.
        let ds = running_example();
        let cube = compute_cube(&ds);
        let skycube = SkyCube::compute(&ds);
        let indexed = IndexedCubeSource::new(&cube);
        let scan = ScanCubeSource::new(&cube);
        let skyey = SkyCubeSource::new(&skycube, ds.len());
        let subsky = SubskySource::new(&ds);
        let anchored = AnchoredSubskySource::new(&ds);
        let direct = DirectSource::new(&ds);
        let sources: [&dyn SkylineSource; 6] =
            [&indexed, &scan, &skyey, &subsky, &anchored, &direct];
        for s in sources {
            let top = s.top_k_frequent(2);
            assert_eq!(top, vec![(1, 10), (4, 10)], "{}", s.label());
        }
    }

    #[test]
    fn invalid_inputs_are_diagnosed_uniformly() {
        let ds = running_example();
        let cube = compute_cube(&ds);
        let skycube = SkyCube::compute(&ds);
        let indexed = IndexedCubeSource::new(&cube);
        let scan = ScanCubeSource::new(&cube);
        let skyey = SkyCubeSource::new(&skycube, ds.len());
        let subsky = SubskySource::new(&ds);
        let anchored = AnchoredSubskySource::new(&ds);
        let direct = DirectSource::new(&ds);
        let sources: [&dyn SkylineSource; 6] =
            [&indexed, &scan, &skyey, &subsky, &anchored, &direct];
        for s in sources {
            assert!(s.subspace_skyline(DimMask::EMPTY).is_err(), "{}", s.label());
            assert!(
                s.subspace_skyline(DimMask::single(9)).is_err(),
                "{}",
                s.label()
            );
            assert!(s.membership_count(999).is_err(), "{}", s.label());
            assert!(s.is_skyline_in(999, mask("A")).is_err(), "{}", s.label());
        }
    }

    #[test]
    fn indexed_source_counts_touched_groups() {
        let ds = running_example();
        let cube = compute_cube(&ds);
        let indexed = IndexedCubeSource::new(&cube);
        assert_eq!(indexed.groups_touched(), 0);
        indexed.subspace_skyline(mask("BD")).unwrap();
        let after_one = indexed.groups_touched();
        assert!(after_one > 0);
        let scan = ScanCubeSource::new(&cube);
        scan.subspace_skyline(mask("BD")).unwrap();
        assert_eq!(scan.groups_touched(), cube.num_groups() as u64);
        // The index touches no more candidates than the scan touches groups.
        assert!(after_one <= scan.groups_touched());
    }

    #[test]
    fn indexed_source_profiles_routes_and_memo() {
        let ds = running_example();
        let cube = compute_cube(&ds);
        let indexed = IndexedCubeSource::new(&cube);
        assert_eq!(indexed.index_stats(), Some(IndexStats::default()));
        // Two sweeps: the second one is all exact memo hits.
        for _ in 0..2 {
            for space in ds.full_space().subsets() {
                indexed.subspace_skyline(space).unwrap();
            }
        }
        let stats = indexed.index_stats().unwrap();
        let sweeps = 2 * (1u64 << ds.dims()) - 2;
        assert_eq!(stats.total_queries(), sweeps);
        assert_eq!(stats.runs_hist.iter().sum::<u64>(), sweeps);
        assert_eq!(stats.elems_hist.iter().sum::<u64>(), sweeps);
        assert_eq!(
            stats.memo_exact + stats.memo_ancestor + stats.memo_miss,
            sweeps
        );
        // Every subspace that took the decisive prefilter in sweep 1 is an
        // exact hit in sweep 2 (the full space goes through the bucket
        // sweep here and is never stored).
        assert!(stats.memo_exact + 1 >= sweeps / 2, "{stats:?}");
        // Non-indexed sources expose nothing.
        assert_eq!(ScanCubeSource::new(&cube).index_stats(), None);
        assert_eq!(DirectSource::new(&ds).index_stats(), None);
    }

    #[test]
    fn index_stats_delta_subtracts_fieldwise() {
        let ds = running_example();
        let cube = compute_cube(&ds);
        let indexed = IndexedCubeSource::new(&cube);
        indexed.subspace_skyline(mask("BD")).unwrap();
        let before = indexed.index_stats().unwrap();
        indexed.subspace_skyline(mask("B")).unwrap();
        let after = indexed.index_stats().unwrap();
        let delta = IndexStats::delta(&before, &after);
        assert_eq!(delta.total_queries(), 1);
        assert_eq!(delta.runs_hist.iter().sum::<u64>(), 1);
    }

    #[test]
    fn anchored_source_reports_its_shape() {
        let ds = running_example();
        let anchored = AnchoredSubskySource::with_anchors(&ds, 2);
        assert_eq!(anchored.label(), "subsky-anchored");
        assert!(anchored.num_anchors() >= 1);
        assert_eq!(anchored.dims(), ds.dims());
        assert_eq!(anchored.num_objects(), ds.len());
        assert_eq!(anchored.subspace_skyline(mask("B")).unwrap(), vec![2, 3, 4]);
    }

    #[test]
    fn hist_bucket_is_log2_with_zero_bucket() {
        assert_eq!(hist_bucket(0), 0);
        assert_eq!(hist_bucket(1), 1);
        assert_eq!(hist_bucket(2), 2);
        assert_eq!(hist_bucket(3), 2);
        assert_eq!(hist_bucket(4), 3);
        assert_eq!(hist_bucket(usize::MAX), 15);
    }
}
