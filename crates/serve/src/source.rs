//! The unified [`SkylineSource`] trait and its five implementations.

use crate::cache::CacheStats;
use skycube_skyey::SkyCube;
use skycube_skyline::Algorithm;
use skycube_stellar::{CompressedSkylineCube, CubeIndex, IndexScratch};
use skycube_subsky::SubskyIndex;
use skycube_types::{Dataset, DimMask, DominanceKernel, ObjId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One answer engine for the paper's query families, behind a uniform,
/// thread-shareable interface. All implementations must return *identical*
/// answers (pinned by the cross-source property tests): skylines ascending
/// by id, frequencies ordered count-descending with ties by ascending id.
pub trait SkylineSource: Sync {
    /// Short name for reports and CLI output.
    fn label(&self) -> &'static str;

    /// Dimensionality of the full space.
    fn dims(&self) -> usize;

    /// Number of objects in the underlying dataset.
    fn num_objects(&self) -> usize;

    /// The skyline of `space`, ascending ids, or a diagnostic for an
    /// invalid subspace.
    fn subspace_skyline(&self, space: DimMask) -> Result<Vec<ObjId>, String>;

    /// Whether object `o` is a skyline object of `space`.
    fn is_skyline_in(&self, o: ObjId, space: DimMask) -> Result<bool, String>;

    /// The number of subspaces in which `o` is a skyline object.
    fn membership_count(&self, o: ObjId) -> Result<u64, String>;

    /// The `k` most frequent subspace-skyline objects with their counts,
    /// count descending, ties by ascending id.
    fn top_k_frequent(&self, k: usize) -> Vec<(ObjId, u64)>;

    /// Cumulative number of groups (or group-like candidates) examined by
    /// this source since construction; `0` for engines without groups.
    fn groups_touched(&self) -> u64 {
        0
    }

    /// Cache counters, for sources wrapped in a [`crate::CachedSource`].
    fn cache_stats(&self) -> Option<CacheStats> {
        None
    }
}

/// Shared validation: `space` must be non-empty and within the full space.
pub(crate) fn check_space(space: DimMask, dims: usize) -> Result<(), String> {
    if space.is_empty() {
        return Err("invalid subspace: the empty subspace has no skyline".to_owned());
    }
    if !space.is_subset_of(DimMask::full(dims)) {
        return Err(format!(
            "invalid subspace {space}: not a subspace of the {dims}-dimensional full space {}",
            DimMask::full(dims)
        ));
    }
    Ok(())
}

/// Shared validation: `o` must be a known object id.
pub(crate) fn check_object(o: ObjId, num_objects: usize) -> Result<(), String> {
    if (o as usize) < num_objects {
        Ok(())
    } else {
        Err(format!(
            "object {o} out of range (dataset has {num_objects} objects)"
        ))
    }
}

// ---------------------------------------------------------------------
// Stellar, indexed
// ---------------------------------------------------------------------

/// The serving path: a compressed skyline cube answered through its
/// [`CubeIndex`]. The index is forced at construction so the first query
/// pays no build cost, and a scratch pool keeps the hot loop allocation-free
/// across threads.
pub struct IndexedCubeSource<'a> {
    index: &'a CubeIndex,
    touched: AtomicU64,
    scratch_pool: Mutex<Vec<IndexScratch>>,
}

impl<'a> IndexedCubeSource<'a> {
    /// Build the source (and the cube's index, if not built yet).
    pub fn new(cube: &'a CompressedSkylineCube) -> Self {
        IndexedCubeSource {
            index: cube.index(),
            touched: AtomicU64::new(0),
            scratch_pool: Mutex::new(Vec::new()),
        }
    }

    /// The underlying index.
    pub fn index(&self) -> &CubeIndex {
        self.index
    }
}

impl SkylineSource for IndexedCubeSource<'_> {
    fn label(&self) -> &'static str {
        "stellar"
    }

    fn dims(&self) -> usize {
        self.index.dims()
    }

    fn num_objects(&self) -> usize {
        self.index.num_objects()
    }

    fn subspace_skyline(&self, space: DimMask) -> Result<Vec<ObjId>, String> {
        let mut scratch = self.scratch_pool.lock().unwrap().pop().unwrap_or_default();
        let mut out = Vec::new();
        let result = self
            .index
            .try_subspace_skyline_into(space, &mut scratch, &mut out);
        self.scratch_pool.lock().unwrap().push(scratch);
        let probe = result?;
        self.touched
            .fetch_add(probe.candidates as u64, Ordering::Relaxed);
        Ok(out)
    }

    fn is_skyline_in(&self, o: ObjId, space: DimMask) -> Result<bool, String> {
        check_space(space, self.dims())?;
        check_object(o, self.num_objects())?;
        Ok(self.index.is_skyline_in(o, space))
    }

    fn membership_count(&self, o: ObjId) -> Result<u64, String> {
        check_object(o, self.num_objects())?;
        Ok(self.index.membership_count(o))
    }

    fn top_k_frequent(&self, k: usize) -> Vec<(ObjId, u64)> {
        self.index.top_k_frequent(k)
    }

    fn groups_touched(&self) -> u64 {
        self.touched.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// Stellar, scan path (reference)
// ---------------------------------------------------------------------

/// The legacy scan path over the same cube: every skyline query walks the
/// full group list and collect-sort-dedups. Kept as the baseline the index
/// is benchmarked and property-tested against.
pub struct ScanCubeSource<'a> {
    cube: &'a CompressedSkylineCube,
    touched: AtomicU64,
}

impl<'a> ScanCubeSource<'a> {
    /// Wrap a cube without building its index.
    pub fn new(cube: &'a CompressedSkylineCube) -> Self {
        ScanCubeSource {
            cube,
            touched: AtomicU64::new(0),
        }
    }
}

impl SkylineSource for ScanCubeSource<'_> {
    fn label(&self) -> &'static str {
        "stellar-scan"
    }

    fn dims(&self) -> usize {
        self.cube.dims()
    }

    fn num_objects(&self) -> usize {
        self.cube.num_objects()
    }

    fn subspace_skyline(&self, space: DimMask) -> Result<Vec<ObjId>, String> {
        let out = self.cube.try_subspace_skyline(space)?;
        self.touched
            .fetch_add(self.cube.num_groups() as u64, Ordering::Relaxed);
        Ok(out)
    }

    fn is_skyline_in(&self, o: ObjId, space: DimMask) -> Result<bool, String> {
        check_space(space, self.dims())?;
        check_object(o, self.num_objects())?;
        Ok(self.cube.is_skyline_in(o, space))
    }

    fn membership_count(&self, o: ObjId) -> Result<u64, String> {
        check_object(o, self.num_objects())?;
        Ok(self.cube.membership_count(o))
    }

    fn top_k_frequent(&self, k: usize) -> Vec<(ObjId, u64)> {
        self.cube.top_k_frequent(k)
    }

    fn groups_touched(&self) -> u64 {
        self.touched.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// Skyey's materialized SkyCube
// ---------------------------------------------------------------------

/// The materialized all-subspaces SkyCube: every skyline is a lookup; the
/// analytics enumerate the stored subspaces.
pub struct SkyCubeSource<'a> {
    cube: &'a SkyCube,
    num_objects: usize,
}

impl<'a> SkyCubeSource<'a> {
    /// Wrap a materialized SkyCube. `num_objects` is the dataset size (the
    /// SkyCube itself only stores skylines).
    pub fn new(cube: &'a SkyCube, num_objects: usize) -> Self {
        SkyCubeSource { cube, num_objects }
    }
}

impl SkylineSource for SkyCubeSource<'_> {
    fn label(&self) -> &'static str {
        "skyey"
    }

    fn dims(&self) -> usize {
        self.cube.dims()
    }

    fn num_objects(&self) -> usize {
        self.num_objects
    }

    fn subspace_skyline(&self, space: DimMask) -> Result<Vec<ObjId>, String> {
        check_space(space, self.dims())?;
        self.cube
            .skyline(space)
            .map(<[ObjId]>::to_vec)
            .ok_or_else(|| format!("subspace {space} not materialized"))
    }

    fn is_skyline_in(&self, o: ObjId, space: DimMask) -> Result<bool, String> {
        check_object(o, self.num_objects)?;
        let sky = self.subspace_skyline(space)?;
        Ok(sky.binary_search(&o).is_ok())
    }

    fn membership_count(&self, o: ObjId) -> Result<u64, String> {
        check_object(o, self.num_objects)?;
        Ok(self
            .cube
            .iter()
            .filter(|(_, sky)| sky.binary_search(&o).is_ok())
            .count() as u64)
    }

    fn top_k_frequent(&self, k: usize) -> Vec<(ObjId, u64)> {
        let mut freq = vec![0u64; self.num_objects];
        for (_, sky) in self.cube.iter() {
            for &o in sky {
                freq[o as usize] += 1;
            }
        }
        rank_frequencies(&freq, k)
    }
}

// ---------------------------------------------------------------------
// SUBSKY sorted index
// ---------------------------------------------------------------------

/// The SUBSKY one-dimensional sorted index: every query is an
/// early-terminating scan; the analytics enumerate subspaces on the fly.
pub struct SubskySource<'a> {
    index: SubskyIndex<'a>,
}

impl<'a> SubskySource<'a> {
    /// Build the sorted index over `ds` with the default kernel.
    pub fn new(ds: &'a Dataset) -> Self {
        SubskySource {
            index: SubskyIndex::build(ds),
        }
    }

    /// Build with an explicit dominance kernel for the query-time scans.
    pub fn with_kernel(ds: &'a Dataset, kernel: DominanceKernel) -> Self {
        SubskySource {
            index: SubskyIndex::build_with(ds, kernel),
        }
    }
}

impl SkylineSource for SubskySource<'_> {
    fn label(&self) -> &'static str {
        "subsky"
    }

    fn dims(&self) -> usize {
        self.index.dataset().dims()
    }

    fn num_objects(&self) -> usize {
        self.index.len()
    }

    fn subspace_skyline(&self, space: DimMask) -> Result<Vec<ObjId>, String> {
        check_space(space, self.dims())?;
        Ok(self.index.skyline(space))
    }

    fn is_skyline_in(&self, o: ObjId, space: DimMask) -> Result<bool, String> {
        check_object(o, self.num_objects())?;
        let sky = self.subspace_skyline(space)?;
        Ok(sky.binary_search(&o).is_ok())
    }

    fn membership_count(&self, o: ObjId) -> Result<u64, String> {
        check_object(o, self.num_objects())?;
        let full = DimMask::full(self.dims());
        Ok(full
            .subsets()
            .filter(|&s| self.index.skyline(s).binary_search(&o).is_ok())
            .count() as u64)
    }

    fn top_k_frequent(&self, k: usize) -> Vec<(ObjId, u64)> {
        let mut freq = vec![0u64; self.num_objects()];
        for s in DimMask::full(self.dims()).subsets() {
            for o in self.index.skyline(s) {
                freq[o as usize] += 1;
            }
        }
        rank_frequencies(&freq, k)
    }
}

// ---------------------------------------------------------------------
// Direct computation
// ---------------------------------------------------------------------

/// The no-precomputation fallback: every query runs a skyline algorithm
/// straight on the dataset.
pub struct DirectSource<'a> {
    ds: &'a Dataset,
    algorithm: Algorithm,
    kernel: DominanceKernel,
}

impl<'a> DirectSource<'a> {
    /// Answer directly from `ds` with the default algorithm and kernel.
    pub fn new(ds: &'a Dataset) -> Self {
        DirectSource {
            ds,
            algorithm: Algorithm::default(),
            kernel: DominanceKernel::default(),
        }
    }

    /// Choose the dominance kernel for the per-query skyline runs.
    pub fn with_kernel(mut self, kernel: DominanceKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Choose the skyline algorithm.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }
}

impl SkylineSource for DirectSource<'_> {
    fn label(&self) -> &'static str {
        "direct"
    }

    fn dims(&self) -> usize {
        self.ds.dims()
    }

    fn num_objects(&self) -> usize {
        self.ds.len()
    }

    fn subspace_skyline(&self, space: DimMask) -> Result<Vec<ObjId>, String> {
        check_space(space, self.dims())?;
        Ok(self.algorithm.run_with(self.ds, space, self.kernel))
    }

    fn is_skyline_in(&self, o: ObjId, space: DimMask) -> Result<bool, String> {
        check_space(space, self.dims())?;
        check_object(o, self.num_objects())?;
        Ok(self.ds.ids().all(|v| !self.ds.dominates(v, o, space)))
    }

    fn membership_count(&self, o: ObjId) -> Result<u64, String> {
        check_object(o, self.num_objects())?;
        let full = DimMask::full(self.dims());
        let mut count = 0u64;
        for s in full.subsets() {
            if self.ds.ids().all(|v| !self.ds.dominates(v, o, s)) {
                count += 1;
            }
        }
        Ok(count)
    }

    fn top_k_frequent(&self, k: usize) -> Vec<(ObjId, u64)> {
        let mut freq = vec![0u64; self.num_objects()];
        for s in DimMask::full(self.dims()).subsets() {
            for o in self.algorithm.run_with(self.ds, s, self.kernel) {
                freq[o as usize] += 1;
            }
        }
        rank_frequencies(&freq, k)
    }
}

/// Turn a per-object frequency table into the canonical top-k ranking:
/// count descending, ties by ascending id, zero-count objects dropped.
fn rank_frequencies(freq: &[u64], k: usize) -> Vec<(ObjId, u64)> {
    let mut ranked: Vec<(ObjId, u64)> = freq
        .iter()
        .enumerate()
        .filter(|&(_, &f)| f > 0)
        .map(|(o, &f)| (o as ObjId, f))
        .collect();
    ranked.sort_unstable_by_key(|&(o, f)| (std::cmp::Reverse(f), o));
    ranked.truncate(k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycube_stellar::compute_cube;
    use skycube_types::running_example;

    fn mask(s: &str) -> DimMask {
        DimMask::parse(s).unwrap()
    }

    #[test]
    fn all_sources_agree_on_running_example() {
        let ds = running_example();
        let cube = compute_cube(&ds);
        let skycube = SkyCube::compute(&ds);
        let indexed = IndexedCubeSource::new(&cube);
        let scan = ScanCubeSource::new(&cube);
        let skyey = SkyCubeSource::new(&skycube, ds.len());
        let subsky = SubskySource::new(&ds);
        let direct = DirectSource::new(&ds);
        let sources: [&dyn SkylineSource; 5] = [&indexed, &scan, &skyey, &subsky, &direct];
        for space in ds.full_space().subsets() {
            let expect = scan.subspace_skyline(space).unwrap();
            for s in sources {
                assert_eq!(
                    s.subspace_skyline(space).unwrap(),
                    expect,
                    "{} subspace {space}",
                    s.label()
                );
            }
            for o in 0..ds.len() as ObjId {
                let expect = scan.is_skyline_in(o, space).unwrap();
                for s in sources {
                    assert_eq!(
                        s.is_skyline_in(o, space).unwrap(),
                        expect,
                        "{} object {o} subspace {space}",
                        s.label()
                    );
                }
            }
        }
        for o in 0..ds.len() as ObjId {
            let expect = scan.membership_count(o).unwrap();
            for s in sources {
                assert_eq!(s.membership_count(o).unwrap(), expect, "{}", s.label());
            }
        }
        let expect = scan.top_k_frequent(10);
        for s in sources {
            assert_eq!(s.top_k_frequent(10), expect, "{}", s.label());
        }
    }

    #[test]
    fn top_k_ties_break_by_ascending_id_in_every_source() {
        // P2 (id 1) and P5 (id 4) tie at 10 memberships in the running
        // example; every source must put id 1 first.
        let ds = running_example();
        let cube = compute_cube(&ds);
        let skycube = SkyCube::compute(&ds);
        let indexed = IndexedCubeSource::new(&cube);
        let scan = ScanCubeSource::new(&cube);
        let skyey = SkyCubeSource::new(&skycube, ds.len());
        let subsky = SubskySource::new(&ds);
        let direct = DirectSource::new(&ds);
        let sources: [&dyn SkylineSource; 5] = [&indexed, &scan, &skyey, &subsky, &direct];
        for s in sources {
            let top = s.top_k_frequent(2);
            assert_eq!(top, vec![(1, 10), (4, 10)], "{}", s.label());
        }
    }

    #[test]
    fn invalid_inputs_are_diagnosed_uniformly() {
        let ds = running_example();
        let cube = compute_cube(&ds);
        let skycube = SkyCube::compute(&ds);
        let indexed = IndexedCubeSource::new(&cube);
        let scan = ScanCubeSource::new(&cube);
        let skyey = SkyCubeSource::new(&skycube, ds.len());
        let subsky = SubskySource::new(&ds);
        let direct = DirectSource::new(&ds);
        let sources: [&dyn SkylineSource; 5] = [&indexed, &scan, &skyey, &subsky, &direct];
        for s in sources {
            assert!(s.subspace_skyline(DimMask::EMPTY).is_err(), "{}", s.label());
            assert!(
                s.subspace_skyline(DimMask::single(9)).is_err(),
                "{}",
                s.label()
            );
            assert!(s.membership_count(999).is_err(), "{}", s.label());
            assert!(s.is_skyline_in(999, mask("A")).is_err(), "{}", s.label());
        }
    }

    #[test]
    fn indexed_source_counts_touched_groups() {
        let ds = running_example();
        let cube = compute_cube(&ds);
        let indexed = IndexedCubeSource::new(&cube);
        assert_eq!(indexed.groups_touched(), 0);
        indexed.subspace_skyline(mask("BD")).unwrap();
        let after_one = indexed.groups_touched();
        assert!(after_one > 0);
        let scan = ScanCubeSource::new(&cube);
        scan.subspace_skyline(mask("BD")).unwrap();
        assert_eq!(scan.groups_touched(), cube.num_groups() as u64);
        // The index touches no more candidates than the scan touches groups.
        assert!(after_one <= scan.groups_touched());
    }
}
