//! An LRU subspace→skyline cache and the [`CachedSource`] wrapper that
//! puts it in front of any [`SkylineSource`].
//!
//! Fig. 10-style workloads revisit subspaces heavily (there are only
//! `2^d − 1` of them), so even a small cache converts repeat skyline
//! queries into hash lookups. Only *successful* `subspace_skyline` answers
//! are cached; the point-query and analytic families are already cheap on
//! the indexed path and pass straight through.
//!
//! Two robustness properties matter at serving time. First, the cache
//! recovers from **mutex poisoning**: if a thread panics while holding the
//! lock the map may be half-updated, so recovery clears every resident
//! entry (a cold cache is always correct) and counts the event. Second,
//! admission is **byte-budgeted** when configured: an entry larger than the
//! remaining budget is refused with
//! [`ServeError::ResourceExhausted`] instead of growing without bound.

use crate::error::ServeError;
use crate::source::SkylineSource;
use skycube_stellar::MaintenanceDelta;
use skycube_types::{DimMask, ObjId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Snapshot of a cache's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Skyline queries answered from the cache.
    pub hits: u64,
    /// Skyline queries that had to go to the underlying source.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum number of resident entries.
    pub capacity: usize,
    /// Inserts refused by the byte-budget admission control.
    pub rejected: u64,
    /// Times the cache recovered from a poisoned lock by clearing itself.
    pub poison_recoveries: u64,
}

struct CacheInner {
    map: HashMap<DimMask, (u64, Vec<ObjId>)>,
    tick: u64,
    bytes: usize,
}

/// A thread-safe least-recently-used map from subspace to skyline.
///
/// Eviction scans for the minimum recency stamp, which is O(capacity);
/// capacities here are small (at most the `2^d − 1` subspaces of a
/// low-dimensional cube), so the scan is cheaper than an intrusive list.
pub struct SubspaceCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    byte_budget: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    rejected: AtomicU64,
    poison_recoveries: AtomicU64,
}

/// Bytes an entry's skyline occupies (payload only; the map overhead is
/// bounded by `capacity` regardless).
fn entry_bytes(skyline: &[ObjId]) -> usize {
    std::mem::size_of_val(skyline)
}

impl SubspaceCache {
    /// A cache holding at most `capacity` skylines, with no byte budget.
    /// Capacity is clamped to at least 1.
    pub fn new(capacity: usize) -> Self {
        Self::build(capacity, None)
    }

    /// A cache holding at most `capacity` skylines whose payloads together
    /// stay within `byte_budget` bytes; oversized inserts are refused with
    /// [`ServeError::ResourceExhausted`].
    pub fn with_byte_budget(capacity: usize, byte_budget: usize) -> Self {
        Self::build(capacity, Some(byte_budget))
    }

    fn build(capacity: usize, byte_budget: Option<usize>) -> Self {
        SubspaceCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                tick: 0,
                bytes: 0,
            }),
            capacity: capacity.max(1),
            byte_budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            poison_recoveries: AtomicU64::new(0),
        }
    }

    /// Lock the map, recovering from poisoning. A panic while the lock was
    /// held may have left the map half-updated (eviction done, insert not),
    /// so recovery drops every entry — a cold cache is always correct —
    /// and counts the event in [`CacheStats::poison_recoveries`].
    fn lock_inner(&self) -> MutexGuard<'_, CacheInner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.inner.clear_poison();
                let mut guard = poisoned.into_inner();
                guard.map.clear();
                guard.bytes = 0;
                self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
                guard
            }
        }
    }

    /// Look up `space`, refreshing its recency on a hit.
    pub fn get(&self, space: DimMask) -> Option<Vec<ObjId>> {
        let mut inner = self.lock_inner();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&space) {
            Some((stamp, sky)) => {
                *stamp = tick;
                let sky = sky.clone();
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(sky)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or refresh) `space`'s skyline, evicting the least recently
    /// used entry if the cache is full. An entry the byte budget refuses is
    /// silently dropped (the answer was already computed; only reuse is
    /// lost) — use [`Self::try_put`] to observe the refusal.
    pub fn put(&self, space: DimMask, skyline: Vec<ObjId>) {
        let _ = self.try_put(space, skyline);
    }

    /// Insert (or refresh) `space`'s skyline, or refuse it with
    /// [`ServeError::ResourceExhausted`] if its payload exceeds the byte
    /// budget. Entries within budget may still evict the LRU entry.
    pub fn try_put(&self, space: DimMask, skyline: Vec<ObjId>) -> Result<(), ServeError> {
        let new_bytes = entry_bytes(&skyline);
        if let Some(budget) = self.byte_budget {
            if new_bytes > budget {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::ResourceExhausted(format!(
                    "cache entry for {space} is {new_bytes} bytes, over the {budget}-byte budget"
                )));
            }
        }
        let mut inner = self.lock_inner();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some((_, old)) = inner.map.remove(&space) {
            inner.bytes -= entry_bytes(&old);
        }
        // Evict until both the entry count and the byte budget fit.
        while inner.map.len() >= self.capacity
            || self
                .byte_budget
                .is_some_and(|budget| inner.bytes + new_bytes > budget)
        {
            let Some(&oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(space, _)| space)
            else {
                break;
            };
            if let Some((_, old)) = inner.map.remove(&oldest) {
                inner.bytes -= entry_bytes(&old);
            }
        }
        inner.bytes += new_bytes;
        inner.map.insert(space, (tick, skyline));
        Ok(())
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.lock_inner().map.len(),
            capacity: self.capacity,
            rejected: self.rejected.load(Ordering::Relaxed),
            poison_recoveries: self.poison_recoveries.load(Ordering::Relaxed),
        }
    }

    /// Drop every resident entry (counters are preserved). The blunt
    /// invalidation hook for maintenance: call after the underlying data
    /// changes so no stale skyline is ever served. When the mutation's
    /// [`MaintenanceDelta`] is available, [`Self::apply_delta`] keeps the
    /// unaffected entries alive instead.
    pub fn clear(&self) {
        let mut inner = self.lock_inner();
        inner.map.clear();
        inner.bytes = 0;
    }

    /// Selective invalidation after one engine mutation: entries whose
    /// subspace a touched group covers are dropped; every other entry's
    /// answer is unchanged up to the positional-id remap, which is applied
    /// in place ([`MaintenanceDelta::remap_ids`]). A full-rebuild delta
    /// degenerates to [`Self::clear`]. Returns the number of entries
    /// dropped.
    pub fn apply_delta(&self, delta: &MaintenanceDelta) -> usize {
        let mut inner = self.lock_inner();
        if delta.is_full() {
            let dropped = inner.map.len();
            inner.map.clear();
            inner.bytes = 0;
            return dropped;
        }
        let before = inner.map.len();
        inner.map.retain(|&space, (_, sky)| {
            if delta.covers(space) {
                return false;
            }
            delta.remap_ids(sky);
            true
        });
        inner.bytes = inner.map.values().map(|(_, sky)| entry_bytes(sky)).sum();
        before - inner.map.len()
    }

    /// Fault injection: panic while holding the cache lock on a scoped
    /// thread, leaving the mutex poisoned so the next access exercises the
    /// clear-and-recover path.
    #[cfg(feature = "faults")]
    pub fn poison(&self) {
        let _ = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = self.inner.lock();
                panic!("fault injection: poisoning the subspace cache lock");
            })
            .join()
        });
    }
}

/// A [`SkylineSource`] wrapper that serves repeated `subspace_skyline`
/// queries from a [`SubspaceCache`]. All other queries delegate untouched.
///
/// The cache is held behind an [`Arc`] so it can outlive the wrapper: a
/// resident daemon rebuilds its source stack per request (the borrows into
/// the engine are request-scoped) but keeps one shared cache warm across
/// all of them via [`Self::with_shared`].
pub struct CachedSource<S> {
    inner: S,
    cache: Arc<SubspaceCache>,
}

impl<S: SkylineSource> CachedSource<S> {
    /// Wrap `inner` with a cache of `capacity` skylines.
    pub fn new(inner: S, capacity: usize) -> Self {
        Self::with_cache(inner, SubspaceCache::new(capacity))
    }

    /// Wrap `inner` with an explicitly configured cache (e.g. one built by
    /// [`SubspaceCache::with_byte_budget`]).
    pub fn with_cache(inner: S, cache: SubspaceCache) -> Self {
        Self::with_shared(inner, Arc::new(cache))
    }

    /// Wrap `inner` with a shared cache that persists beyond this wrapper.
    pub fn with_shared(inner: S, cache: Arc<SubspaceCache>) -> Self {
        CachedSource { inner, cache }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The cache itself (for fault injection and budget inspection).
    pub fn cache(&self) -> &SubspaceCache {
        &self.cache
    }

    /// Clear every cached skyline. Call when the data behind the wrapped
    /// source changed (e.g. on a [`skycube_stellar::StellarEngine`]
    /// generation bump) — the cache cannot observe that itself. Prefer
    /// [`Self::apply_delta`] when the mutation's delta is available.
    pub fn invalidate(&self) {
        self.cache.clear();
    }

    /// Selectively invalidate after one engine mutation: only cached
    /// answers a touched group covers are dropped, survivors are remapped
    /// into the new id space. Returns the number of entries dropped.
    pub fn apply_delta(&self, delta: &MaintenanceDelta) -> usize {
        self.cache.apply_delta(delta)
    }
}

/// How a [`GenerationGate::sync`] reconciled a cache with the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateOutcome {
    /// The cache was already at the engine's generation; nothing done.
    Current,
    /// Exactly one mutation elapsed and its delta was selective: the cache
    /// was patched with [`SubspaceCache::apply_delta`].
    Patched,
    /// The cache was cleared (several mutations elapsed, or the delta was a
    /// full rebuild).
    Cleared,
}

/// Tracks the [`skycube_stellar::StellarEngine`] generation a cache was
/// last synchronized to, and translates generation bumps into the cheapest
/// safe invalidation: a no-op when current, a selective purge when exactly
/// one mutation behind with a selective [`MaintenanceDelta`], a full clear
/// otherwise. Replaces the clear-everything-on-every-mutation hook.
pub struct GenerationGate {
    seen: AtomicU64,
}

impl GenerationGate {
    /// A gate synchronized to `generation` (use the engine's current
    /// generation at cache-warm time).
    pub fn new(generation: u64) -> Self {
        GenerationGate {
            seen: AtomicU64::new(generation),
        }
    }

    /// The generation this gate last synchronized to.
    pub fn seen(&self) -> u64 {
        self.seen.load(Ordering::Acquire)
    }

    /// Reconcile `cache` with the engine's current `generation` and latest
    /// `delta` (from [`skycube_stellar::StellarEngine::last_delta`]). The
    /// selective path is taken only when the gate is exactly one mutation
    /// behind and `delta` describes that mutation — anything else (gap of
    /// two or more, missing or full-rebuild delta) clears the cache.
    pub fn sync(
        &self,
        generation: u64,
        delta: Option<&MaintenanceDelta>,
        cache: &SubspaceCache,
    ) -> GateOutcome {
        let seen = self.seen.swap(generation, Ordering::AcqRel);
        if seen == generation {
            return GateOutcome::Current;
        }
        match delta {
            Some(d) if seen + 1 == generation && d.generation() == generation && !d.is_full() => {
                cache.apply_delta(d);
                GateOutcome::Patched
            }
            _ => {
                cache.clear();
                GateOutcome::Cleared
            }
        }
    }
}

impl<S: SkylineSource> SkylineSource for CachedSource<S> {
    fn label(&self) -> &'static str {
        self.inner.label()
    }

    fn dims(&self) -> usize {
        self.inner.dims()
    }

    fn num_objects(&self) -> usize {
        self.inner.num_objects()
    }

    fn subspace_skyline(&self, space: DimMask) -> Result<Vec<ObjId>, ServeError> {
        if let Some(sky) = self.cache.get(space) {
            return Ok(sky);
        }
        let sky = self.inner.subspace_skyline(space)?;
        self.cache.put(space, sky.clone());
        Ok(sky)
    }

    fn subspace_skyline_within(
        &self,
        space: DimMask,
        deadline: Option<Instant>,
    ) -> Result<Vec<ObjId>, ServeError> {
        if let Some(sky) = self.cache.get(space) {
            return Ok(sky);
        }
        let sky = self.inner.subspace_skyline_within(space, deadline)?;
        self.cache.put(space, sky.clone());
        Ok(sky)
    }

    fn skyband(&self, k: usize, space: DimMask) -> Result<Vec<ObjId>, ServeError> {
        // Only the k = 1 band is the skyline the cache holds; deeper bands
        // pass through (the cache is keyed by subspace alone).
        if k == 1 {
            self.subspace_skyline(space)
        } else {
            self.inner.skyband(k, space)
        }
    }

    fn is_skyline_in(&self, o: ObjId, space: DimMask) -> Result<bool, ServeError> {
        self.inner.is_skyline_in(o, space)
    }

    fn membership_count(&self, o: ObjId) -> Result<u64, ServeError> {
        self.inner.membership_count(o)
    }

    fn top_k_frequent(&self, k: usize) -> Vec<(ObjId, u64)> {
        self.inner.top_k_frequent(k)
    }

    fn groups_touched(&self) -> u64 {
        self.inner.groups_touched()
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        Some(self.cache.stats())
    }

    fn index_stats(&self) -> Option<crate::source::IndexStats> {
        self.inner.index_stats()
    }

    fn demotions(&self) -> u64 {
        self.inner.demotions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::IndexedCubeSource;
    use skycube_stellar::compute_cube;
    use skycube_types::running_example;

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let cache = SubspaceCache::new(2);
        let a = DimMask::from_dims([0]);
        let b = DimMask::from_dims([1]);
        let c = DimMask::from_dims([2]);
        cache.put(a, vec![1]);
        cache.put(b, vec![2]);
        assert_eq!(cache.get(a), Some(vec![1])); // refresh a: b is now LRU
        cache.put(c, vec![3]); // evicts b
        assert_eq!(cache.get(b), None);
        assert_eq!(cache.get(a), Some(vec![1]));
        assert_eq!(cache.get(c), Some(vec![3]));
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.capacity), (2, 2));
        assert_eq!((stats.hits, stats.misses), (3, 1));
    }

    #[test]
    fn capacity_zero_is_clamped_to_one() {
        let cache = SubspaceCache::new(0);
        cache.put(DimMask::from_dims([0]), vec![1]);
        assert_eq!(cache.stats().capacity, 1);
        assert_eq!(cache.get(DimMask::from_dims([0])), Some(vec![1]));
    }

    #[test]
    fn byte_budget_refuses_oversized_entries() {
        let id_bytes = std::mem::size_of::<ObjId>();
        // Room for two 2-element skylines, not a 5-element one.
        let cache = SubspaceCache::with_byte_budget(8, 4 * id_bytes);
        let a = DimMask::from_dims([0]);
        let b = DimMask::from_dims([1]);
        let big = DimMask::from_dims([2]);
        cache.try_put(a, vec![1, 2]).unwrap();
        cache.try_put(b, vec![3, 4]).unwrap();
        let err = cache.try_put(big, vec![1, 2, 3, 4, 5]).unwrap_err();
        assert_eq!(err.kind(), "resource-exhausted");
        assert!(err.to_string().contains("byte"));
        // The refusal evicted nothing and is counted.
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.rejected, 1);
        // `put` drops the oversized entry silently but still counts it.
        cache.put(big, vec![1, 2, 3, 4, 5]);
        assert_eq!(cache.stats().rejected, 2);
        assert_eq!(cache.get(big), None);
    }

    #[test]
    fn byte_budget_evicts_to_fit_admissible_entries() {
        let id_bytes = std::mem::size_of::<ObjId>();
        let cache = SubspaceCache::with_byte_budget(8, 4 * id_bytes);
        let a = DimMask::from_dims([0]);
        let b = DimMask::from_dims([1]);
        let c = DimMask::from_dims([2]);
        cache.try_put(a, vec![1, 2]).unwrap();
        cache.try_put(b, vec![3, 4]).unwrap();
        // c fits the budget only after evicting the LRU entry (a).
        cache.try_put(c, vec![5, 6]).unwrap();
        assert_eq!(cache.get(a), None);
        assert_eq!(cache.get(b), Some(vec![3, 4]));
        assert_eq!(cache.get(c), Some(vec![5, 6]));
    }

    #[test]
    fn poisoned_cache_recovers_by_clearing() {
        let cache = SubspaceCache::new(8);
        let a = DimMask::from_dims([0]);
        cache.put(a, vec![1]);
        assert_eq!(cache.get(a), Some(vec![1]));
        // Panic while holding the lock, from a scoped thread.
        let _ = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = cache.inner.lock();
                panic!("poisoning the cache for the test");
            })
            .join()
        });
        // The cache answers (cold) instead of panicking, and counts it.
        assert_eq!(cache.get(a), None);
        let stats = cache.stats();
        assert_eq!(stats.poison_recoveries, 1);
        assert_eq!(stats.entries, 0);
        // It keeps working afterwards, with no further recoveries.
        cache.put(a, vec![2]);
        assert_eq!(cache.get(a), Some(vec![2]));
        assert_eq!(cache.stats().poison_recoveries, 1);
    }

    #[test]
    fn cached_source_answers_repeats_from_the_cache() {
        let ds = running_example();
        let cube = compute_cube(&ds);
        let source = CachedSource::new(IndexedCubeSource::new(&cube), 8);
        let space = DimMask::parse("BD").unwrap();
        let first = source.subspace_skyline(space).unwrap();
        let touched_after_first = source.groups_touched();
        let second = source.subspace_skyline(space).unwrap();
        assert_eq!(first, second);
        // The repeat never reached the index.
        assert_eq!(source.groups_touched(), touched_after_first);
        let stats = source.cache_stats().unwrap();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn errors_are_not_cached() {
        let ds = running_example();
        let cube = compute_cube(&ds);
        let source = CachedSource::new(IndexedCubeSource::new(&cube), 8);
        assert!(source.subspace_skyline(DimMask::EMPTY).is_err());
        assert!(source.subspace_skyline(DimMask::EMPTY).is_err());
        let stats = source.cache_stats().unwrap();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn invalidate_drops_entries_but_keeps_counters() {
        let ds = running_example();
        let cube = compute_cube(&ds);
        let source = CachedSource::new(IndexedCubeSource::new(&cube), 8);
        let space = DimMask::parse("BD").unwrap();
        source.subspace_skyline(space).unwrap();
        source.subspace_skyline(space).unwrap();
        let stats = source.cache_stats().unwrap();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        source.invalidate();
        let stats = source.cache_stats().unwrap();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 0));
        // The next query is a miss that goes back to the index.
        source.subspace_skyline(space).unwrap();
        let stats = source.cache_stats().unwrap();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 1));
    }

    /// Regression for the maintenance staleness bug: an insert replaces the
    /// engine's cube (and invalidates its lazy index), but a serving-tier
    /// cache keyed by subspace lives outside the engine and MUST be cleared
    /// on a generation bump, or it keeps serving the pre-insert skyline.
    #[test]
    fn cached_indexed_source_stays_fresh_across_engine_inserts() {
        use skycube_stellar::StellarEngine;
        let mut engine = StellarEngine::new(&running_example());
        let space = DimMask::parse("B").unwrap();
        let cache = SubspaceCache::new(8);
        let generation = engine.generation();
        {
            let source = IndexedCubeSource::new(engine.cube());
            let sky = source.subspace_skyline(space).unwrap();
            assert_eq!(sky, vec![2, 3, 4]);
            cache.put(space, sky);
        }
        assert_eq!(cache.get(space), Some(vec![2, 3, 4]));
        // The new object takes over subspace B outright (B = 0): the cached
        // entry above is now stale.
        engine.insert(vec![9, 0, 11, 9]).unwrap();
        assert_ne!(engine.generation(), generation, "insert must bump");
        cache.clear();
        assert_eq!(cache.get(space), None, "stale answer served after insert");
        let source = IndexedCubeSource::new(engine.cube());
        let sky = source.subspace_skyline(space).unwrap();
        assert_eq!(sky, vec![5]);
        cache.put(space, sky);
        assert_eq!(cache.get(space), Some(vec![5]));
    }

    /// Warm every subspace, mutate through the fast path, apply the delta:
    /// covered entries drop, survivors are remapped and still correct.
    #[test]
    fn apply_delta_purges_selectively_and_remaps_survivors() {
        use skycube_stellar::StellarEngine;
        let mut engine = StellarEngine::new(&running_example());
        let full = DimMask::full(4);
        let cache = SubspaceCache::new(32);
        for space in full.subsets() {
            cache.put(space, engine.cube().subspace_skyline(space));
        }
        let warm = cache.stats().entries;
        assert_eq!(warm, 15);
        // Delete non-seed P1 (id 0): a fast-path mutation with a delta.
        engine.delete(0).unwrap();
        let delta = engine.last_delta().unwrap();
        assert!(!delta.is_full());
        let dropped = cache.apply_delta(delta);
        assert!(dropped < warm, "selective purge dropped everything");
        let survivors = cache.stats().entries;
        assert!(survivors > 0, "no entry survived a non-seed delete");
        assert_eq!(survivors + dropped, warm);
        // Every surviving entry now equals the fresh answer.
        let mut verified = 0;
        for space in full.subsets() {
            if let Some(sky) = cache.get(space) {
                assert_eq!(
                    sky,
                    engine.cube().subspace_skyline(space),
                    "stale survivor in {space}"
                );
                verified += 1;
            }
        }
        assert_eq!(verified, survivors);
    }

    #[test]
    fn apply_delta_with_full_rebuild_clears_everything() {
        use skycube_stellar::MaintenanceDelta;
        let cache = SubspaceCache::new(8);
        cache.put(DimMask::from_dims([0]), vec![1]);
        cache.put(DimMask::from_dims([1]), vec![2]);
        let dropped = cache.apply_delta(&MaintenanceDelta::full_rebuild(3));
        assert_eq!(dropped, 2);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn generation_gate_picks_the_cheapest_safe_invalidation() {
        use skycube_stellar::StellarEngine;
        let mut engine = StellarEngine::new(&running_example());
        let full = DimMask::full(4);
        let cache = SubspaceCache::new(32);
        for space in full.subsets() {
            cache.put(space, engine.cube().subspace_skyline(space));
        }
        let gate = GenerationGate::new(engine.generation());
        // Already current: nothing happens.
        assert_eq!(
            gate.sync(engine.generation(), engine.last_delta(), &cache),
            GateOutcome::Current
        );
        assert_eq!(cache.stats().entries, 15);
        // One fast-path mutation behind: selective patch.
        engine.insert(vec![9, 9, 11, 9]).unwrap();
        assert_eq!(
            gate.sync(engine.generation(), engine.last_delta(), &cache),
            GateOutcome::Patched
        );
        assert!(cache.stats().entries > 0);
        assert_eq!(gate.seen(), engine.generation());
        // Two mutations elapse before the next sync: the delta only covers
        // the latest one, so the gate must clear.
        engine.insert(vec![9, 9, 11, 9]).unwrap();
        engine.insert(vec![8, 9, 11, 9]).unwrap();
        assert_eq!(
            gate.sync(engine.generation(), engine.last_delta(), &cache),
            GateOutcome::Cleared
        );
        assert_eq!(cache.stats().entries, 0);
        // A full-rebuild mutation clears even at distance one.
        for space in full.subsets() {
            cache.put(space, engine.cube().subspace_skyline(space));
        }
        engine.insert(vec![0, 0, 0, 0]).unwrap();
        assert!(engine.last_delta().unwrap().is_full());
        assert_eq!(
            gate.sync(engine.generation(), engine.last_delta(), &cache),
            GateOutcome::Cleared
        );
        assert_eq!(cache.stats().entries, 0);
    }
}
