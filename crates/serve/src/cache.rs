//! An LRU subspace→skyline cache and the [`CachedSource`] wrapper that
//! puts it in front of any [`SkylineSource`].
//!
//! Fig. 10-style workloads revisit subspaces heavily (there are only
//! `2^d − 1` of them), so even a small cache converts repeat skyline
//! queries into hash lookups. Only *successful* `subspace_skyline` answers
//! are cached; the point-query and analytic families are already cheap on
//! the indexed path and pass straight through.

use crate::source::SkylineSource;
use skycube_types::{DimMask, ObjId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Snapshot of a cache's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Skyline queries answered from the cache.
    pub hits: u64,
    /// Skyline queries that had to go to the underlying source.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum number of resident entries.
    pub capacity: usize,
}

struct CacheInner {
    map: HashMap<DimMask, (u64, Vec<ObjId>)>,
    tick: u64,
}

/// A thread-safe least-recently-used map from subspace to skyline.
///
/// Eviction scans for the minimum recency stamp, which is O(capacity);
/// capacities here are small (at most the `2^d − 1` subspaces of a
/// low-dimensional cube), so the scan is cheaper than an intrusive list.
pub struct SubspaceCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SubspaceCache {
    /// A cache holding at most `capacity` skylines. Capacity is clamped to
    /// at least 1.
    pub fn new(capacity: usize) -> Self {
        SubspaceCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look up `space`, refreshing its recency on a hit.
    pub fn get(&self, space: DimMask) -> Option<Vec<ObjId>> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&space) {
            Some((stamp, sky)) => {
                *stamp = tick;
                let sky = sky.clone();
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(sky)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or refresh) `space`'s skyline, evicting the least recently
    /// used entry if the cache is full.
    pub fn put(&self, space: DimMask, skyline: Vec<ObjId>) {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&space) {
            if let Some(&oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(space, _)| space)
            {
                inner.map.remove(&oldest);
            }
        }
        inner.map.insert(space, (tick, skyline));
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.inner.lock().unwrap().map.len(),
            capacity: self.capacity,
        }
    }

    /// Drop every resident entry (counters are preserved). The invalidation
    /// hook for maintenance: call after the underlying data changes so no
    /// stale skyline is ever served.
    pub fn clear(&self) {
        self.inner.lock().unwrap().map.clear();
    }
}

/// A [`SkylineSource`] wrapper that serves repeated `subspace_skyline`
/// queries from a [`SubspaceCache`]. All other queries delegate untouched.
pub struct CachedSource<S> {
    inner: S,
    cache: SubspaceCache,
}

impl<S: SkylineSource> CachedSource<S> {
    /// Wrap `inner` with a cache of `capacity` skylines.
    pub fn new(inner: S, capacity: usize) -> Self {
        CachedSource {
            inner,
            cache: SubspaceCache::new(capacity),
        }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Clear every cached skyline. Call when the data behind the wrapped
    /// source changed (e.g. on a [`skycube_stellar::StellarEngine`]
    /// generation bump) — the cache cannot observe that itself.
    pub fn invalidate(&self) {
        self.cache.clear();
    }
}

impl<S: SkylineSource> SkylineSource for CachedSource<S> {
    fn label(&self) -> &'static str {
        self.inner.label()
    }

    fn dims(&self) -> usize {
        self.inner.dims()
    }

    fn num_objects(&self) -> usize {
        self.inner.num_objects()
    }

    fn subspace_skyline(&self, space: DimMask) -> Result<Vec<ObjId>, String> {
        if let Some(sky) = self.cache.get(space) {
            return Ok(sky);
        }
        let sky = self.inner.subspace_skyline(space)?;
        self.cache.put(space, sky.clone());
        Ok(sky)
    }

    fn is_skyline_in(&self, o: ObjId, space: DimMask) -> Result<bool, String> {
        self.inner.is_skyline_in(o, space)
    }

    fn membership_count(&self, o: ObjId) -> Result<u64, String> {
        self.inner.membership_count(o)
    }

    fn top_k_frequent(&self, k: usize) -> Vec<(ObjId, u64)> {
        self.inner.top_k_frequent(k)
    }

    fn groups_touched(&self) -> u64 {
        self.inner.groups_touched()
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        Some(self.cache.stats())
    }

    fn index_stats(&self) -> Option<crate::source::IndexStats> {
        self.inner.index_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::IndexedCubeSource;
    use skycube_stellar::compute_cube;
    use skycube_types::running_example;

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let cache = SubspaceCache::new(2);
        let a = DimMask::from_dims([0]);
        let b = DimMask::from_dims([1]);
        let c = DimMask::from_dims([2]);
        cache.put(a, vec![1]);
        cache.put(b, vec![2]);
        assert_eq!(cache.get(a), Some(vec![1])); // refresh a: b is now LRU
        cache.put(c, vec![3]); // evicts b
        assert_eq!(cache.get(b), None);
        assert_eq!(cache.get(a), Some(vec![1]));
        assert_eq!(cache.get(c), Some(vec![3]));
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.capacity), (2, 2));
        assert_eq!((stats.hits, stats.misses), (3, 1));
    }

    #[test]
    fn capacity_zero_is_clamped_to_one() {
        let cache = SubspaceCache::new(0);
        cache.put(DimMask::from_dims([0]), vec![1]);
        assert_eq!(cache.stats().capacity, 1);
        assert_eq!(cache.get(DimMask::from_dims([0])), Some(vec![1]));
    }

    #[test]
    fn cached_source_answers_repeats_from_the_cache() {
        let ds = running_example();
        let cube = compute_cube(&ds);
        let source = CachedSource::new(IndexedCubeSource::new(&cube), 8);
        let space = DimMask::parse("BD").unwrap();
        let first = source.subspace_skyline(space).unwrap();
        let touched_after_first = source.groups_touched();
        let second = source.subspace_skyline(space).unwrap();
        assert_eq!(first, second);
        // The repeat never reached the index.
        assert_eq!(source.groups_touched(), touched_after_first);
        let stats = source.cache_stats().unwrap();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn errors_are_not_cached() {
        let ds = running_example();
        let cube = compute_cube(&ds);
        let source = CachedSource::new(IndexedCubeSource::new(&cube), 8);
        assert!(source.subspace_skyline(DimMask::EMPTY).is_err());
        assert!(source.subspace_skyline(DimMask::EMPTY).is_err());
        let stats = source.cache_stats().unwrap();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn invalidate_drops_entries_but_keeps_counters() {
        let ds = running_example();
        let cube = compute_cube(&ds);
        let source = CachedSource::new(IndexedCubeSource::new(&cube), 8);
        let space = DimMask::parse("BD").unwrap();
        source.subspace_skyline(space).unwrap();
        source.subspace_skyline(space).unwrap();
        let stats = source.cache_stats().unwrap();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        source.invalidate();
        let stats = source.cache_stats().unwrap();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 0));
        // The next query is a miss that goes back to the index.
        source.subspace_skyline(space).unwrap();
        let stats = source.cache_stats().unwrap();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 1));
    }

    /// Regression for the maintenance staleness bug: an insert replaces the
    /// engine's cube (and invalidates its lazy index), but a serving-tier
    /// cache keyed by subspace lives outside the engine and MUST be cleared
    /// on a generation bump, or it keeps serving the pre-insert skyline.
    #[test]
    fn cached_indexed_source_stays_fresh_across_engine_inserts() {
        use skycube_stellar::StellarEngine;
        let mut engine = StellarEngine::new(&running_example());
        let space = DimMask::parse("B").unwrap();
        let cache = SubspaceCache::new(8);
        let generation = engine.generation();
        {
            let source = IndexedCubeSource::new(engine.cube());
            let sky = source.subspace_skyline(space).unwrap();
            assert_eq!(sky, vec![2, 3, 4]);
            cache.put(space, sky);
        }
        assert_eq!(cache.get(space), Some(vec![2, 3, 4]));
        // The new object takes over subspace B outright (B = 0): the cached
        // entry above is now stale.
        engine.insert(vec![9, 0, 11, 9]).unwrap();
        assert_ne!(engine.generation(), generation, "insert must bump");
        cache.clear();
        assert_eq!(cache.get(space), None, "stale answer served after insert");
        let source = IndexedCubeSource::new(engine.cube());
        let sky = source.subspace_skyline(space).unwrap();
        assert_eq!(sky, vec![5]);
        cache.put(space, sky);
        assert_eq!(cache.get(space), Some(vec![5]));
    }
}
