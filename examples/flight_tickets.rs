//! The paper's motivating scenario (Section 1): choosing flight routes from
//! Vancouver to Istanbul by price, travel time and number of stops — and
//! wanting the skylines of *all* attribute combinations, not just the full
//! space.
//!
//! ```sh
//! cargo run --example flight_tickets
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skycube::prelude::*;

const ATTRS: [&str; 3] = ["price", "traveltime", "stops"];

fn main() {
    // Synthesize a plausible route inventory: more stops generally buys a
    // lower price but a longer trip; prices are quantized the way fare
    // engines quote them, so ties abound.
    let mut rng = StdRng::seed_from_u64(42);
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for _ in 0..400 {
        let stops: i64 = rng.gen_range(0..=3);
        let base = 2200 - 320 * stops + rng.gen_range(-6..=6) * 50;
        let hours = 13 + 4 * stops + rng.gen_range(0..=5);
        rows.push(vec![base.max(400), hours, stops]);
    }
    let ds = Dataset::from_rows(3, rows)
        .and_then(|d| d.with_names(ATTRS.to_vec()))
        .expect("static shape");

    let cube = compute_cube(&ds);
    println!(
        "{} routes, {} skyline groups, {} total subspace-skyline memberships",
        ds.len(),
        cube.num_groups(),
        cube.skycube_size()
    );

    // "A skyline route w.r.t. a set of attributes may not be a skyline
    // route any more if some attributes are added or removed."
    let full = ds.full_space();
    let price_time = DimMask::from_dims([0, 1]);
    let price_stops = DimMask::from_dims([0, 2]);
    for (name, space) in [
        ("(price, traveltime, stops)", full),
        ("(price, traveltime)", price_time),
        ("(price, stops)", price_stops),
    ] {
        let sky = cube.subspace_skyline(space);
        println!("\nskyline{name}: {} routes", sky.len());
        for &r in sky.iter().take(5) {
            let row = ds.row(r);
            println!("  route #{r}: ${} / {}h / {} stops", row[0], row[1], row[2]);
        }
        if sky.len() > 5 {
            println!("  …");
        }
    }

    // Explain one skyline route: in which attribute combinations is the
    // cheapest skyline route unbeatable, and why?
    let cheapest = *cube
        .subspace_skyline(full)
        .iter()
        .min_by_key(|&&r| ds.value(r, 0))
        .expect("non-empty skyline");
    println!("\nWhy is route #{cheapest} interesting?");
    for (decisive, maximal) in cube.membership_intervals(cheapest) {
        let dims = |m: DimMask| m.iter().map(|d| ATTRS[d]).collect::<Vec<_>>().join("+");
        for &c in decisive {
            println!(
                "  minimal winning combination {{{}}} (and every extension up to {{{}}})",
                dims(c),
                dims(maximal)
            );
        }
    }
}
