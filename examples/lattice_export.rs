//! Exporting the skyline-group lattice (the paper's Figure 3) as Graphviz
//! DOT, plus the per-subspace reports and explanation API.
//!
//! ```sh
//! cargo run --example lattice_export > lattice.dot
//! dot -Tsvg lattice.dot -o lattice.svg     # if graphviz is installed
//! ```

use skycube::prelude::*;
use skycube::stellar::{explain_text, lattice_to_dot, subspace_report, CompressionStats};

fn main() {
    let ds = running_example();
    let cube = compute_cube(&ds);

    // The DOT drawing of Figure 3(b) goes to stdout so it can be piped.
    let lattice = GroupLattice::new(cube.groups().to_vec());
    print!("{}", lattice_to_dot(&lattice, &ds));

    // Everything else to stderr, so `> lattice.dot` stays clean.
    let stats = CompressionStats::of(&cube);
    eprintln!(
        "\n{} objects, {} seeds, {} groups with {} decisive subspaces; \
         {} skycube entries ({:.1}× compression)",
        stats.objects,
        stats.seeds,
        stats.groups,
        stats.decisive_subspaces,
        stats.skycube_entries,
        stats.compression_ratio()
    );

    for name in ["B", "AD", "ABCD"] {
        let space = DimMask::parse(name).unwrap();
        eprint!("\n{}", subspace_report(&cube, &ds, space));
    }

    eprintln!();
    for (o, name) in [(2u32, "BD"), (2, "A"), (0, "ABCD")] {
        let space = DimMask::parse(name).unwrap();
        eprintln!("{}", explain_text(&cube, &ds, o, space));
    }
}
