//! Quickstart: the paper's running example (Figure 2), end to end.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use skycube::prelude::*;

fn main() {
    // Five objects P1..P5 in the 4-d space ABCD (Figure 2 of the paper).
    let ds = running_example();
    println!("Data set:\n{ds:?}");

    // Compute the compressed skyline cube: every skyline group with its
    // decisive subspaces, found from the full-space skyline alone.
    let cube = compute_cube(&ds);

    println!(
        "Full-space skyline (seed objects): {:?}",
        cube.seeds()
            .iter()
            .map(|&o| format!("P{}", o + 1))
            .collect::<Vec<_>>()
    );
    println!("\nSkyline groups and signatures (Figure 3(b)):");
    let mut sigs: Vec<String> = cube.groups().iter().map(|g| g.signature(&ds)).collect();
    sigs.sort();
    for s in &sigs {
        println!("  {s}");
    }

    // Query 1: the skyline of any subspace, straight from the cube.
    println!("\nSubspace skylines derived from the cube:");
    for name in ["A", "B", "D", "BD", "ABCD"] {
        let space = DimMask::parse(name).unwrap();
        let sky: Vec<String> = cube
            .subspace_skyline(space)
            .iter()
            .map(|&o| format!("P{}", o + 1))
            .collect();
        println!("  skyline({name:>4}) = {sky:?}");
    }

    // Query 2: where is a given object in the skyline?
    let p3 = 2; // P3 is NOT in the full-space skyline…
    println!("\nP3's skyline memberships (decisive → maximal intervals):");
    for (decisive, maximal) in cube.membership_intervals(p3) {
        for c in decisive {
            println!("  every subspace between {c} and {maximal}");
        }
    }
    println!(
        "P3 is a skyline object in {} of the 15 subspaces.",
        cube.membership_count(p3)
    );

    // Query 3: multidimensional analysis.
    println!(
        "\nCompression: {} groups summarize {} subspace-skyline memberships.",
        cube.num_groups(),
        cube.skycube_size()
    );
}
