//! Multidimensional skyline analysis of the NBA-like statistics table — the
//! paper's real-data scenario (Section 6.1): 17,265 players, 17 career
//! statistics, larger is better.
//!
//! ```sh
//! cargo run --release --example nba_analysis [dims]
//! ```

use skycube::datagen::{nba_table_raw, NBA_COLUMNS};
use skycube::prelude::*;

fn main() {
    let dims: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
        .clamp(1, 17);

    // Raw table (larger = better) for display; engine-native for analysis.
    let raw = nba_table_raw(17_265, 7);
    let ds = nba_table_sized(17_265, 7).prefix_dims(dims).unwrap();
    println!(
        "NBA-like table: {} players, analyzing the first {dims} statistics {:?}",
        ds.len(),
        &NBA_COLUMNS[..dims]
    );

    let cube = compute_cube(&ds);
    println!(
        "full-space skyline: {} players; skyline groups: {}; subspace skyline objects: {}",
        cube.seeds().len(),
        cube.num_groups(),
        cube.skycube_size()
    );

    // The "greatest players": seeds ranked by how many subspaces they
    // dominate in.
    let mut ranked: Vec<(ObjId, u64)> = cube
        .seeds()
        .iter()
        .map(|&p| (p, cube.membership_count(p)))
        .collect();
    ranked.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("\nTop seed players by subspace-skyline memberships:");
    for &(p, n) in ranked.iter().take(5) {
        let row = raw.row(p);
        println!(
            "  player #{p}: skyline in {n} subspaces — {} seasons, {} games, {} pts",
            row[0], row[1], row[16]
        );
    }

    // Explain the top player's decisive combinations.
    if let Some(&(star, _)) = ranked.first() {
        println!("\nDecisive statistic combinations of player #{star}:");
        for (decisive, maximal) in cube.membership_intervals(star).into_iter().take(4) {
            let names = |m: DimMask| {
                m.iter()
                    .map(|d| NBA_COLUMNS[d])
                    .collect::<Vec<_>>()
                    .join("+")
            };
            for &c in decisive.iter().take(3) {
                println!("  {{{}}} ⊆ … ⊆ {{{}}}", names(c), names(maximal));
            }
        }
    }

    // Compression story of Figure 9: groups vs skycube entries per
    // dimensionality.
    println!("\nSubspace skyline objects by dimensionality (from the cube):");
    for (k, count) in cube.skycube_sizes_by_dimensionality().iter().enumerate() {
        println!("  {}-d subspaces: {count}", k + 1);
    }
}
