//! Keeping a compressed skyline cube fresh under inserts with
//! [`StellarEngine`] — the maintenance extension (after Xia & Zhang,
//! SIGMOD'06, the paper's reference [14]).
//!
//! ```sh
//! cargo run --release --example incremental_updates
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skycube::prelude::*;

fn main() {
    // Start from a modest product catalog: price, delivery days, weight.
    let mut rng = StdRng::seed_from_u64(99);
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for _ in 0..2_000 {
        rows.push(vec![
            rng.gen_range(10..500),
            rng.gen_range(1..30),
            rng.gen_range(100..5_000),
        ]);
    }
    let ds = Dataset::from_rows(3, rows).expect("static shape");
    let mut engine = StellarEngine::new(&ds);
    println!(
        "initial cube: {} objects, {} groups, {} seeds",
        engine.len(),
        engine.cube().num_groups(),
        engine.cube().seeds().len()
    );

    // Stream 200 new products in; most are dominated (fast path — only the
    // non-seed accommodation step is redone), a few reshape the skyline.
    let t = std::time::Instant::now();
    for i in 0..200 {
        let row = vec![
            rng.gen_range(10..500),
            rng.gen_range(1..30),
            rng.gen_range(100..5_000),
        ];
        engine.insert(row).expect("well-formed row");
        if (i + 1) % 50 == 0 {
            println!(
                "after {:>3} inserts: {} groups, {} seeds",
                i + 1,
                engine.cube().num_groups(),
                engine.cube().seeds().len()
            );
        }
    }
    let stats = engine.maintenance_stats();
    println!(
        "\n200 inserts in {:.2?}: {} took the incremental fast path ({} splicing a built index), {} forced a full recomputation",
        t.elapsed(),
        stats.fast(),
        stats.spliced,
        stats.full(),
    );

    // The maintained cube answers queries exactly like a fresh one.
    let fresh = compute_cube(&engine.dataset());
    assert_eq!(engine.cube().num_groups(), fresh.num_groups());
    let cheapest_fast = DimMask::from_dims([0, 1]);
    assert_eq!(
        engine.cube().subspace_skyline(cheapest_fast),
        fresh.subspace_skyline(cheapest_fast)
    );
    println!(
        "maintained cube ≡ recomputed cube ({} groups) — skyline(price, delivery) has {} products",
        fresh.num_groups(),
        fresh.subspace_skyline(cheapest_fast).len()
    );
}
