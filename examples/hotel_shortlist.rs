//! Building a hotel shortlist with the skyline-operator family: plain
//! subspace skylines, constrained skylines, k-skybands and k-dominant
//! skylines — the generalizations the compressed cube's substrate provides.
//!
//! ```sh
//! cargo run --release --example hotel_shortlist
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skycube::algorithms::{constrained_skyline, k_dominant_skyline, k_skyband, Ranges};
use skycube::prelude::*;

const ATTRS: [&str; 4] = ["price", "beach_m", "center_km", "noise"];

fn main() {
    // price €/night, distance to the beach (m), distance to the centre
    // (km, scaled ×10), street noise (dB) — all minimized.
    let mut rng = StdRng::seed_from_u64(7);
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for _ in 0..5_000 {
        let beach: i64 = rng.gen_range(0..3_000);
        // Beachfront property is pricey and far from the centre.
        let price = (240 - beach / 25 + rng.gen_range(-40..160)).max(35);
        let center = (30 - beach / 150 + rng.gen_range(0..60)).max(1);
        let noise = rng.gen_range(30..75);
        rows.push(vec![price, beach, center, noise]);
    }
    let ds = Dataset::from_rows(4, rows)
        .and_then(|d| d.with_names(ATTRS.to_vec()))
        .expect("static shape");
    let full = ds.full_space();

    let sky = skyline(&ds, full);
    println!(
        "{} hotels; {} on the 4-attribute skyline",
        ds.len(),
        sky.len()
    );

    // Too many? The k-dominant skyline tightens the criterion: a hotel
    // survives only if nothing beats it on every 3-subset of attributes.
    for k in (2..=4).rev() {
        let kd = k_dominant_skyline(&ds, full, k);
        println!("  {k}-dominant skyline: {} hotels", kd.len());
    }

    // Need backups? The 3-skyband adds hotels beaten by at most 2 others —
    // the exact candidate set for any top-3 ranking with monotone weights.
    let band = k_skyband(&ds, full, 3);
    println!(
        "3-skyband (top-3 candidates under any monotone scoring): {}",
        band.len()
    );

    // Hard constraints: ≤ €260 a night, ≤ 500 m to the beach.
    let ranges: Ranges = vec![Some((0, 260)), Some((0, 500)), None, None];
    let constrained = constrained_skyline(&ds, full, &ranges);
    println!(
        "\nskyline within (price ≤ €260, beach ≤ 500 m): {} hotels",
        constrained.len()
    );
    for &h in constrained.iter().take(5) {
        let r = ds.row(h);
        println!(
            "  hotel #{h}: €{} | beach {} m | centre {:.1} km | {} dB",
            r[0],
            r[1],
            r[2] as f64 / 10.0,
            r[3]
        );
    }

    // And the full multidimensional view: in which attribute combinations
    // does the overall cheapest skyline hotel win?
    let cube = compute_cube(&ds);
    let cheapest = *cube
        .subspace_skyline(full)
        .iter()
        .min_by_key(|&&h| ds.value(h, 0))
        .expect("non-empty skyline");
    println!(
        "\n{}",
        skycube::stellar::explain_text(&cube, &ds, cheapest, DimMask::parse("AB").unwrap())
    );
    println!(
        "hotel #{cheapest} is a skyline member in {} of the 15 attribute combinations",
        cube.membership_count(cheapest)
    );
}
